//! Named sensor address blocks and the synthetic IMS deployment.
//!
//! The paper's measurements come from eleven darknet blocks at nine
//! organizations, referred to by anonymized labels that encode their size:
//! `A/23, B/24, C/24, D/20, E/21, F/22, G/25, H/18, I/17, M/22, Z/8`.
//! The real base addresses are not published, so [`ims_deployment`] supplies
//! a synthetic deployment with the same labels and sizes. The bases were
//! chosen deliberately (see `DESIGN.md`):
//!
//! * `M/22` sits inside `192.0.0.0/8` but outside `192.168.0.0/16`, so the
//!   CodeRedII local-preference leak from NATed hosts lands on it, exactly
//!   as the paper hypothesizes for its M block.
//! * `H/18` starts at `128.84.192.0`: its first two octets pin the low
//!   16 bits of the Slammer LCG state to an offset with high 2-adic
//!   valuation from the generator's fixed points, so H is traversed by
//!   fewer long PRNG cycles — reproducing the paper's H-block deficit.
//! * `D/20` and `I/17` have first octets `≡ 3 (mod 4)`, placing them on the
//!   longest cycles for all three flawed Slammer increments.

use std::fmt;

use crate::ip::Ip;
use crate::prefix::Prefix;

/// A labelled darknet block: a [`Prefix`] plus the anonymized name used in
/// the paper's figures (`"A"`, `"B"`, …, `"Z"`).
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::AddressBlock;
///
/// let blocks = hotspots_ipspace::ims_deployment();
/// let h = blocks.iter().find(|b| b.label() == "H").unwrap();
/// assert_eq!(h.prefix().len(), 18);
/// assert_eq!(h.to_string(), "H=128.84.192.0/18");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AddressBlock {
    label: String,
    prefix: Prefix,
}

impl AddressBlock {
    /// Creates a labelled block.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_ipspace::{AddressBlock, Prefix};
    ///
    /// let b = AddressBlock::new("D", "131.107.0.0/20".parse::<Prefix>().unwrap());
    /// assert_eq!(b.label(), "D");
    /// ```
    pub fn new(label: impl Into<String>, prefix: Prefix) -> AddressBlock {
        AddressBlock {
            label: label.into(),
            prefix,
        }
    }

    /// The anonymized label (`"A"`, `"H"`, …).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The block's CIDR prefix.
    pub fn prefix(&self) -> Prefix {
        self.prefix
    }

    /// Number of addresses the block monitors.
    pub fn size(&self) -> u64 {
        self.prefix.size()
    }

    /// Returns `true` if `ip` falls inside the block.
    pub fn contains(&self, ip: Ip) -> bool {
        self.prefix.contains(ip)
    }
}

impl fmt::Display for AddressBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.label, self.prefix)
    }
}

/// Error returned by [`Deployment::by_label`]: the requested label is not
/// in the deployment. Lists what *is* there, so a typo is obvious.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBlock {
    label: String,
    available: Vec<String>,
}

impl UnknownBlock {
    /// The label that was looked up.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Display for UnknownBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no block labelled {:?} in deployment (available: {})",
            self.label,
            self.available.join(", ")
        )
    }
}

impl std::error::Error for UnknownBlock {}

/// Label-indexed lookup over a sensor deployment.
///
/// Every consumer used to inline
/// `blocks.iter().find(|b| b.label() == label).expect(...)`; this trait
/// gives the idiom one home and a real error.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::{ims_deployment, Deployment};
///
/// let blocks = ims_deployment();
/// assert_eq!(blocks.by_label("M").unwrap().prefix().len(), 22);
/// assert!(blocks.by_label("Q").is_err());
/// ```
pub trait Deployment {
    /// The block labelled `label`, or an error naming the label and the
    /// labels that exist.
    fn by_label(&self, label: &str) -> Result<&AddressBlock, UnknownBlock>;
}

impl Deployment for [AddressBlock] {
    fn by_label(&self, label: &str) -> Result<&AddressBlock, UnknownBlock> {
        self.iter()
            .find(|b| b.label() == label)
            .ok_or_else(|| UnknownBlock {
                label: label.to_owned(),
                available: self.iter().map(|b| b.label().to_owned()).collect(),
            })
    }
}

/// Returns the synthetic eleven-block IMS deployment
/// (A/23, B/24, C/24, D/20, E/21, F/22, G/25, H/18, I/17, M/22, Z/8).
///
/// Blocks are mutually disjoint and entirely within globally routable
/// space. See the module documentation for why specific bases were chosen.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::ims_deployment;
///
/// let blocks = ims_deployment();
/// assert_eq!(blocks.len(), 11);
/// let total: u64 = blocks.iter().map(|b| b.size()).sum();
/// assert!(total > (1 << 24)); // dominated by the /8
/// ```
pub fn ims_deployment() -> Vec<AddressBlock> {
    let spec: [(&str, &str); 11] = [
        ("A", "41.10.0.0/23"),
        ("B", "67.55.3.0/24"),
        ("C", "88.120.44.0/24"),
        ("D", "131.107.0.0/20"),
        ("E", "152.200.64.0/21"),
        ("F", "163.37.8.0/22"),
        ("G", "177.12.99.0/25"),
        ("H", "128.84.192.0/18"),
        ("I", "199.77.0.0/17"),
        ("M", "192.40.16.0/22"),
        ("Z", "96.0.0.0/8"),
    ];
    spec.iter()
        .map(|(label, p)| {
            // hotspots-lint: allow(panic-path) reason="deployment prefixes are valid"
            AddressBlock::new(*label, p.parse().expect("deployment prefixes are valid"))
        })
        .collect()
}

/// Generates a randomized IMS-like deployment: the same labels and sizes
/// as [`ims_deployment`], but with uniformly random, mutually disjoint,
/// globally routable base addresses — except for the one *structural*
/// constraint the paper's M-block analysis rests on: **M stays inside
/// `192.0.0.0/8` but outside `192.168.0.0/16`** (that is a topology fact
/// about where NAT leakage lands, not a tuning knob).
///
/// Used by the sensitivity harness to show the reproduction's
/// conclusions do not depend on the default synthetic placement.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let a = hotspots_ipspace::random_ims_deployment(&mut rng);
/// let b = hotspots_ipspace::random_ims_deployment(&mut rng);
/// assert_eq!(a.len(), 11);
/// assert_ne!(a, b, "placements are re-randomized per call");
/// ```
pub fn random_ims_deployment<R: rand::Rng + ?Sized>(rng: &mut R) -> Vec<AddressBlock> {
    let sizes: [(&str, u8); 11] = [
        ("A", 23),
        ("B", 24),
        ("C", 24),
        ("D", 20),
        ("E", 21),
        ("F", 22),
        ("G", 25),
        ("H", 18),
        ("I", 17),
        ("M", 22),
        ("Z", 8),
    ];
    let mut placed: Vec<Prefix> = Vec::with_capacity(11);
    let mut out = Vec::with_capacity(11);
    // place the biggest blocks first so they always find room
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by_key(|&i| sizes[i].1);
    for idx in order {
        let (label, len) = sizes[idx];
        let prefix = loop {
            let base = if label == "M" {
                // inside 192/8
                Ip::from_octets(192, rng.gen(), rng.gen(), rng.gen())
            } else {
                Ip::new(rng.gen())
            };
            let candidate = Prefix::containing(base, len);
            let routable = crate::special::is_globally_routable(candidate.base())
                && crate::special::is_globally_routable(candidate.last_ip());
            let m_ok = label != "M" || !candidate.overlaps(crate::special::PRIVATE_192);
            // no other block may swallow 192/8 whole, or M could never fit
            let leaves_room_for_m = label == "M"
                || !candidate.contains_prefix(Prefix::containing(Ip::from_octets(192, 0, 0, 0), 8));
            if routable
                && m_ok
                && leaves_room_for_m
                && placed.iter().all(|p| !p.overlaps(candidate))
            {
                break candidate;
            }
        };
        placed.push(prefix);
        out.push((idx, AddressBlock::new(label, prefix)));
    }
    out.sort_by_key(|(idx, _)| *idx);
    out.into_iter().map(|(_, b)| b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special;

    #[test]
    fn deployment_has_paper_sizes() {
        let blocks = ims_deployment();
        let sizes: Vec<(String, u8)> = blocks
            .iter()
            .map(|b| (b.label().to_owned(), b.prefix().len()))
            .collect();
        let expected = [
            ("A", 23u8),
            ("B", 24),
            ("C", 24),
            ("D", 20),
            ("E", 21),
            ("F", 22),
            ("G", 25),
            ("H", 18),
            ("I", 17),
            ("M", 22),
            ("Z", 8),
        ];
        for (got, want) in sizes.iter().zip(expected.iter()) {
            assert_eq!(got.0, want.0);
            assert_eq!(got.1, want.1, "block {} has wrong size", want.0);
        }
        // /25 really is 128 addresses, /8 really is 16M, per the paper.
        let g = blocks.iter().find(|b| b.label() == "G").unwrap();
        assert_eq!(g.size(), 128);
        let z = blocks.iter().find(|b| b.label() == "Z").unwrap();
        assert_eq!(z.size(), 1 << 24);
    }

    #[test]
    fn deployment_blocks_are_disjoint() {
        let blocks = ims_deployment();
        for (i, a) in blocks.iter().enumerate() {
            for b in &blocks[i + 1..] {
                assert!(!a.prefix().overlaps(b.prefix()), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn deployment_blocks_are_globally_routable() {
        for b in ims_deployment() {
            assert!(
                special::is_globally_routable(b.prefix().base()),
                "{b} is not routable"
            );
            assert!(
                special::is_globally_routable(b.prefix().last_ip()),
                "{b} tail is not routable"
            );
        }
    }

    #[test]
    fn m_block_inside_192_slash_8_outside_private() {
        let blocks = ims_deployment();
        let m = blocks.iter().find(|b| b.label() == "M").unwrap();
        let slash8 = Prefix::containing(Ip::from_octets(192, 0, 0, 0), 8);
        assert!(slash8.contains_prefix(m.prefix()));
        assert!(!special::PRIVATE_192.overlaps(m.prefix()));
    }

    #[test]
    fn random_deployments_satisfy_the_contract() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let blocks = random_ims_deployment(&mut rng);
            assert_eq!(blocks.len(), 11);
            // same labels and sizes as the default deployment, in order
            for (random, fixed) in blocks.iter().zip(ims_deployment()) {
                assert_eq!(random.label(), fixed.label());
                assert_eq!(random.prefix().len(), fixed.prefix().len());
            }
            // disjoint and routable
            for (i, a) in blocks.iter().enumerate() {
                assert!(special::is_globally_routable(a.prefix().base()), "{a}");
                assert!(special::is_globally_routable(a.prefix().last_ip()), "{a}");
                for b in &blocks[i + 1..] {
                    assert!(!a.prefix().overlaps(b.prefix()), "{a} overlaps {b}");
                }
            }
            // the structural M constraint
            let m = blocks.iter().find(|b| b.label() == "M").unwrap();
            assert_eq!(m.prefix().base().octets()[0], 192);
            assert!(!m.prefix().overlaps(special::PRIVATE_192));
        }
    }

    #[test]
    fn random_deployments_are_seed_deterministic() {
        use rand::SeedableRng;
        let a = random_ims_deployment(&mut rand::rngs::StdRng::seed_from_u64(4));
        let b = random_ims_deployment(&mut rand::rngs::StdRng::seed_from_u64(4));
        let c = random_ims_deployment(&mut rand::rngs::StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn contains_respects_prefix() {
        let b = AddressBlock::new("X", "10.1.2.0/24".parse().unwrap());
        assert!(b.contains(Ip::from_octets(10, 1, 2, 250)));
        assert!(!b.contains(Ip::from_octets(10, 1, 3, 0)));
    }
}
