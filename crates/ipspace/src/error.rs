//! Error types for address and prefix parsing/construction.

use std::error::Error;
use std::fmt;

/// Error returned when parsing an [`Ip`](crate::Ip) from a string fails.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::Ip;
///
/// let err = "256.0.0.1".parse::<Ip>().unwrap_err();
/// assert!(err.to_string().contains("invalid"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIpError {
    pub(crate) input: String,
}

impl fmt::Display for ParseIpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address syntax: {:?}", self.input)
    }
}

impl Error for ParseIpError {}

/// Error returned when parsing a [`Prefix`](crate::Prefix) from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePrefixError {
    /// The address part before the `/` was not a valid IPv4 address.
    Address(ParseIpError),
    /// The prefix length after the `/` was missing or not in `0..=32`.
    Length(String),
    /// The prefix was syntactically valid but had host bits set and strict
    /// parsing was requested.
    Prefix(PrefixError),
}

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePrefixError::Address(e) => write!(f, "invalid prefix address: {e}"),
            ParsePrefixError::Length(s) => {
                write!(f, "invalid prefix length (expected 0..=32): {s:?}")
            }
            ParsePrefixError::Prefix(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ParsePrefixError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParsePrefixError::Address(e) => Some(e),
            ParsePrefixError::Prefix(e) => Some(e),
            ParsePrefixError::Length(_) => None,
        }
    }
}

impl From<ParseIpError> for ParsePrefixError {
    fn from(e: ParseIpError) -> Self {
        ParsePrefixError::Address(e)
    }
}

impl From<PrefixError> for ParsePrefixError {
    fn from(e: PrefixError) -> Self {
        ParsePrefixError::Prefix(e)
    }
}

/// Error returned when constructing a [`Prefix`](crate::Prefix) from raw
/// parts fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixError {
    /// Prefix length was greater than 32.
    LengthOutOfRange {
        /// The offending length.
        len: u8,
    },
    /// The base address had bits set below the prefix length.
    HostBitsSet {
        /// The offending base address value.
        base: u32,
        /// The requested prefix length.
        len: u8,
    },
}

impl fmt::Display for PrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrefixError::LengthOutOfRange { len } => {
                write!(f, "prefix length {len} out of range (expected 0..=32)")
            }
            PrefixError::HostBitsSet { base, len } => write!(
                f,
                "base address {}.{}.{}.{} has host bits set for /{len}",
                (base >> 24) & 0xff,
                (base >> 16) & 0xff,
                (base >> 8) & 0xff,
                base & 0xff
            ),
        }
    }
}

impl Error for PrefixError {}
