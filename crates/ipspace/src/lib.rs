//! IPv4 address-space substrate for the hotspots reproduction.
//!
//! Self-propagating malware picks 32-bit targets; darknet telescopes observe
//! slices of the same 32-bit space. Everything in this workspace therefore
//! speaks in terms of three small types defined here:
//!
//! * [`Ip`] — a single IPv4 address (a transparent, ordered `u32` newtype),
//! * [`Prefix`] — a CIDR block such as `192.168.0.0/16`,
//! * [`Bucket24`] / [`Bucket16`] / [`Bucket8`] — histogram keys used when
//!   aggregating observations "by destination /24" the way the paper's
//!   figures do.
//!
//! The crate also knows which parts of the space are special
//! ([`special`]): RFC 1918 private ranges (central to the CodeRedII/NAT
//! case study), loopback, multicast, and class-E reserved space.
//!
//! # Examples
//!
//! ```
//! use hotspots_ipspace::{Ip, Prefix};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ip: Ip = "192.168.7.9".parse()?;
//! let private: Prefix = "192.168.0.0/16".parse()?;
//! assert!(private.contains(ip));
//! assert!(hotspots_ipspace::special::is_private(ip));
//! assert_eq!(ip.bucket24().to_string(), "192.168.7.0/24");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod block;
mod bucket;
mod error;
mod hostset;
mod ip;
mod prefix;
mod range;
pub mod special;

pub use block::{ims_deployment, random_ims_deployment, AddressBlock, Deployment, UnknownBlock};
pub use bucket::{Bucket16, Bucket24, Bucket8};
pub use error::{ParseIpError, ParsePrefixError, PrefixError};
pub use hostset::{HostSet, HostSetError, HostSetIter};
pub use ip::Ip;
pub use prefix::{IpIter, Prefix, SubnetIter};
pub use range::IpRange;
