//! CIDR prefixes and iteration over their addresses and subnets.

use std::fmt;
use std::str::FromStr;

use crate::error::{ParsePrefixError, PrefixError};
use crate::ip::Ip;

/// A CIDR prefix: a power-of-two-aligned block of IPv4 addresses such as
/// `192.168.0.0/16`.
///
/// The base address is always canonical (host bits are zero); constructors
/// enforce this. The whole space is `0.0.0.0/0`.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::{Ip, Prefix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p: Prefix = "10.0.0.0/8".parse()?;
/// assert_eq!(p.size(), 1 << 24);
/// assert!(p.contains("10.255.0.1".parse()?));
/// assert!(!p.contains("11.0.0.0".parse()?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Prefix {
    base: Ip,
    len: u8,
}

impl Prefix {
    /// The entire IPv4 space, `0.0.0.0/0`.
    pub const ALL: Prefix = Prefix {
        base: Ip::MIN,
        len: 0,
    };

    /// Creates a prefix from a canonical base address and length.
    ///
    /// # Errors
    ///
    /// Returns [`PrefixError::LengthOutOfRange`] if `len > 32` and
    /// [`PrefixError::HostBitsSet`] if `base` has bits set below the prefix
    /// boundary.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_ipspace::{Ip, Prefix};
    ///
    /// assert!(Prefix::new(Ip::from_octets(10, 0, 0, 0), 8).is_ok());
    /// assert!(Prefix::new(Ip::from_octets(10, 0, 0, 1), 8).is_err());
    /// ```
    pub const fn new(base: Ip, len: u8) -> Result<Prefix, PrefixError> {
        if len > 32 {
            return Err(PrefixError::LengthOutOfRange { len });
        }
        let mask = Self::mask_for(len);
        if base.value() & !mask != 0 {
            return Err(PrefixError::HostBitsSet {
                base: base.value(),
                len,
            });
        }
        Ok(Prefix { base, len })
    }

    /// Creates the prefix of length `len` that contains `ip`, truncating
    /// host bits as needed.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_ipspace::{Ip, Prefix};
    ///
    /// let p = Prefix::containing(Ip::from_octets(10, 1, 2, 3), 16);
    /// assert_eq!(p.to_string(), "10.1.0.0/16");
    /// ```
    pub fn containing(ip: Ip, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length {len} out of range");
        let mask = Self::mask_for(len);
        Prefix {
            base: Ip::new(ip.value() & mask),
            len,
        }
    }

    #[inline]
    const fn mask_for(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The canonical base (network) address.
    #[inline]
    pub const fn base(self) -> Ip {
        self.base
    }

    /// The prefix length in bits (`0..=32`).
    #[inline]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// Returns `true` only for the degenerate impossible case — a prefix
    /// always contains at least one address, so this is always `false`.
    /// Provided for clippy-friendly symmetry with [`Prefix::size`].
    #[inline]
    pub const fn is_empty(self) -> bool {
        false
    }

    /// The network mask as a 32-bit value.
    #[inline]
    pub const fn mask(self) -> u32 {
        Self::mask_for(self.len)
    }

    /// Number of addresses covered (`2^(32-len)`), as a `u64` because /0
    /// covers 2^32.
    #[inline]
    pub const fn size(self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// The last (highest) address in the prefix.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_ipspace::Prefix;
    /// let p: Prefix = "10.0.0.0/30".parse().unwrap();
    /// assert_eq!(p.last_ip().to_string(), "10.0.0.3");
    /// ```
    #[inline]
    pub const fn last_ip(self) -> Ip {
        Ip::new(self.base.value() | !self.mask())
    }

    /// Returns `true` if `ip` falls inside the prefix.
    #[inline]
    pub const fn contains(self, ip: Ip) -> bool {
        ip.value() & self.mask() == self.base.value()
    }

    /// Returns `true` if `other` is fully contained in `self`
    /// (every prefix contains itself).
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_ipspace::Prefix;
    /// let net: Prefix = "10.0.0.0/8".parse().unwrap();
    /// let sub: Prefix = "10.3.0.0/16".parse().unwrap();
    /// assert!(net.contains_prefix(sub));
    /// assert!(!sub.contains_prefix(net));
    /// ```
    #[inline]
    pub fn contains_prefix(self, other: Prefix) -> bool {
        other.len >= self.len && self.contains(other.base)
    }

    /// Returns `true` if the two prefixes share any address.
    #[inline]
    pub fn overlaps(self, other: Prefix) -> bool {
        self.contains_prefix(other) || other.contains_prefix(self)
    }

    /// The `index`-th address of the prefix (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.size()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_ipspace::Prefix;
    /// let p: Prefix = "192.0.2.0/24".parse().unwrap();
    /// assert_eq!(p.nth(255).to_string(), "192.0.2.255");
    /// ```
    #[inline]
    pub fn nth(self, index: u64) -> Ip {
        assert!(
            index < self.size(),
            "address index {index} out of range for {self}"
        );
        Ip::new(self.base.value().wrapping_add(index as u32))
    }

    /// Iterates over every address in the prefix in ascending order.
    ///
    /// For a /0 this yields 2^32 items; use with care.
    pub fn iter(self) -> IpIter {
        IpIter {
            next: Some(self.base),
            last: self.last_ip(),
        }
    }

    /// Iterates over the sub-prefixes of length `sub_len` that tile this
    /// prefix, in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `sub_len < self.len()` or `sub_len > 32`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_ipspace::Prefix;
    /// let p: Prefix = "10.0.0.0/23".parse().unwrap();
    /// let subs: Vec<String> = p.subnets(24).map(|s| s.to_string()).collect();
    /// assert_eq!(subs, ["10.0.0.0/24", "10.0.1.0/24"]);
    /// ```
    pub fn subnets(self, sub_len: u8) -> SubnetIter {
        assert!(
            sub_len >= self.len && sub_len <= 32,
            "subnet length {sub_len} invalid for {self}"
        );
        SubnetIter {
            next_base: Some(self.base),
            last_base: Ip::new(self.last_ip().value() & Self::mask_for(sub_len)),
            sub_len,
        }
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base, self.len)
    }
}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Prefix, ParsePrefixError> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| ParsePrefixError::Length(s.to_owned()))?;
        let base: Ip = addr.parse()?;
        if len.is_empty() || len.len() > 2 || !len.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParsePrefixError::Length(len.to_owned()));
        }
        let len: u8 = len
            .parse()
            .map_err(|_| ParsePrefixError::Length(len.to_owned()))?;
        Ok(Prefix::new(base, len)?)
    }
}

impl From<Ip> for Prefix {
    /// A single address is the /32 prefix containing only itself.
    fn from(ip: Ip) -> Prefix {
        Prefix { base: ip, len: 32 }
    }
}

/// Iterator over the addresses of a [`Prefix`], produced by [`Prefix::iter`].
#[derive(Debug, Clone)]
pub struct IpIter {
    next: Option<Ip>,
    last: Ip,
}

impl Iterator for IpIter {
    type Item = Ip;

    fn next(&mut self) -> Option<Ip> {
        let cur = self.next?;
        self.next = if cur == self.last {
            None
        } else {
            Some(cur.wrapping_add(1))
        };
        Some(cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.next {
            None => (0, Some(0)),
            Some(next) => {
                let remaining = u64::from(self.last.value() - next.value()) + 1;
                let r = usize::try_from(remaining).unwrap_or(usize::MAX);
                (r, Some(r))
            }
        }
    }
}

impl ExactSizeIterator for IpIter {}

/// Iterator over sub-prefixes, produced by [`Prefix::subnets`].
#[derive(Debug, Clone)]
pub struct SubnetIter {
    next_base: Option<Ip>,
    last_base: Ip,
    sub_len: u8,
}

impl Iterator for SubnetIter {
    type Item = Prefix;

    fn next(&mut self) -> Option<Prefix> {
        let base = self.next_base?;
        let step = 1u64 << (32 - self.sub_len);
        self.next_base = if base == self.last_base {
            None
        } else {
            Some(base.wrapping_add(step as u32))
        };
        Some(Prefix {
            base,
            len: self.sub_len,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.next_base {
            None => (0, Some(0)),
            Some(next) => {
                let step = 1u64 << (32 - self.sub_len);
                let remaining = (u64::from(self.last_base.value() - next.value()) / step) + 1;
                let r = usize::try_from(remaining).unwrap_or(usize::MAX);
                (r, Some(r))
            }
        }
    }
}

impl ExactSizeIterator for SubnetIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_rejects_host_bits() {
        let err = Prefix::new(Ip::from_octets(10, 0, 0, 1), 8).unwrap_err();
        assert!(matches!(err, PrefixError::HostBitsSet { .. }));
    }

    #[test]
    fn new_rejects_long_lengths() {
        let err = Prefix::new(Ip::MIN, 33).unwrap_err();
        assert!(matches!(err, PrefixError::LengthOutOfRange { len: 33 }));
    }

    #[test]
    fn containing_truncates() {
        let p = Prefix::containing(Ip::from_octets(192, 168, 77, 3), 24);
        assert_eq!(p.to_string(), "192.168.77.0/24");
    }

    #[test]
    fn slash_zero_covers_everything() {
        assert_eq!(Prefix::ALL.size(), 1 << 32);
        assert!(Prefix::ALL.contains(Ip::MIN));
        assert!(Prefix::ALL.contains(Ip::MAX));
        assert_eq!(Prefix::ALL.last_ip(), Ip::MAX);
    }

    #[test]
    fn slash_32_is_single_address() {
        let ip = Ip::from_octets(8, 8, 8, 8);
        let p = Prefix::from(ip);
        assert_eq!(p.size(), 1);
        assert!(p.contains(ip));
        assert!(!p.contains(ip.wrapping_add(1)));
        assert_eq!(p.iter().collect::<Vec<_>>(), vec![ip]);
    }

    #[test]
    fn parse_round_trip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.0.0/16", "1.2.3.4/32"] {
            let p: Prefix = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "10.0.0.0",
            "10.0.0.0/",
            "10.0.0.0/33",
            "10.0.0.0/ 8",
            "10.0.0.1/8",
            "/8",
            "10.0.0.0/-1",
            "10.0.0.0/008",
        ] {
            assert!(bad.parse::<Prefix>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn iter_yields_every_address_once() {
        let p: Prefix = "10.0.0.0/29".parse().unwrap();
        let ips: Vec<Ip> = p.iter().collect();
        assert_eq!(ips.len(), 8);
        assert_eq!(ips[0].to_string(), "10.0.0.0");
        assert_eq!(ips[7].to_string(), "10.0.0.7");
    }

    #[test]
    fn iter_size_hint_is_exact() {
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        let mut it = p.iter();
        assert_eq!(it.len(), 256);
        it.next();
        assert_eq!(it.len(), 255);
    }

    #[test]
    fn iter_handles_top_of_space() {
        let p: Prefix = "255.255.255.252/30".parse().unwrap();
        assert_eq!(p.iter().count(), 4);
    }

    #[test]
    fn subnets_tile_parent() {
        let p: Prefix = "172.16.0.0/14".parse().unwrap();
        let subs: Vec<Prefix> = p.subnets(16).collect();
        assert_eq!(subs.len(), 4);
        assert!(subs.iter().all(|s| p.contains_prefix(*s)));
        assert_eq!(subs[0].to_string(), "172.16.0.0/16");
        assert_eq!(subs[3].to_string(), "172.19.0.0/16");
    }

    #[test]
    fn subnets_of_same_length_is_self() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        let subs: Vec<Prefix> = p.subnets(8).collect();
        assert_eq!(subs, vec![p]);
    }

    #[test]
    fn subnets_size_hint_is_exact() {
        let p = Prefix::ALL;
        assert_eq!(p.subnets(8).len(), 256);
        assert_eq!(p.subnets(16).len(), 65536);
    }

    #[test]
    fn nth_indexes_in_order() {
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        assert_eq!(p.nth(0), p.base());
        assert_eq!(p.nth(255), p.last_ip());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nth_panics_past_end() {
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        let _ = p.nth(256);
    }

    #[test]
    fn overlap_is_symmetric_containment() {
        let a: Prefix = "10.0.0.0/8".parse().unwrap();
        let b: Prefix = "10.5.0.0/16".parse().unwrap();
        let c: Prefix = "11.0.0.0/8".parse().unwrap();
        assert!(a.overlaps(b) && b.overlaps(a));
        assert!(!a.overlaps(c) && !c.overlaps(a));
    }

    fn arb_prefix() -> impl Strategy<Value = Prefix> {
        (any::<u32>(), 0u8..=32).prop_map(|(v, len)| Prefix::containing(Ip::new(v), len))
    }

    proptest! {
        #[test]
        fn prefix_contains_its_base_and_last(p in arb_prefix()) {
            prop_assert!(p.contains(p.base()));
            prop_assert!(p.contains(p.last_ip()));
        }

        #[test]
        fn containment_is_transitive(v in any::<u32>(), a in 0u8..=32, b in 0u8..=32, c in 0u8..=32) {
            let mut lens = [a, b, c];
            lens.sort_unstable();
            let outer = Prefix::containing(Ip::new(v), lens[0]);
            let mid = Prefix::containing(Ip::new(v), lens[1]);
            let inner = Prefix::containing(Ip::new(v), lens[2]);
            prop_assert!(outer.contains_prefix(mid));
            prop_assert!(mid.contains_prefix(inner));
            prop_assert!(outer.contains_prefix(inner));
        }

        #[test]
        fn display_parse_round_trip(p in arb_prefix()) {
            let back: Prefix = p.to_string().parse().unwrap();
            prop_assert_eq!(p, back);
        }

        #[test]
        fn nth_stays_inside(p in arb_prefix(), idx in any::<u64>()) {
            let idx = idx % p.size();
            prop_assert!(p.contains(p.nth(idx)));
        }

        #[test]
        fn subnets_partition(v in any::<u32>(), len in 8u8..=24) {
            // take a smallish parent so iteration stays cheap
            let parent = Prefix::containing(Ip::new(v), len);
            let sub_len = (len + 4).min(32);
            let subs: Vec<Prefix> = parent.subnets(sub_len).collect();
            prop_assert_eq!(subs.len() as u64, parent.size() / subs[0].size());
            // disjoint and covering: total size matches, all inside parent
            let total: u64 = subs.iter().map(|s| s.size()).sum();
            prop_assert_eq!(total, parent.size());
            for w in subs.windows(2) {
                prop_assert!(!w[0].overlaps(w[1]));
            }
        }
    }
}
