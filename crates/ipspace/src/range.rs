//! Arbitrary (non-aligned) address ranges and their CIDR decomposition.
//!
//! Bot hit-lists and filter configurations are often expressed as
//! `start–end` ranges rather than aligned prefixes; routing machinery
//! (and this workspace's [`Prefix`]-based types) wants CIDR. This module
//! provides the classical minimal decomposition.

use std::fmt;

use crate::ip::Ip;
use crate::prefix::Prefix;

/// An inclusive, possibly unaligned address range `[start, end]`.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::{Ip, IpRange};
///
/// let r = IpRange::new(Ip::from_octets(10, 0, 0, 3), Ip::from_octets(10, 0, 0, 10)).unwrap();
/// assert_eq!(r.len(), 8);
/// assert!(r.contains(Ip::from_octets(10, 0, 0, 7)));
/// // minimal CIDR cover: 10.0.0.3/32 10.0.0.4/30 10.0.0.8/31 10.0.0.10/32
/// assert_eq!(r.to_prefixes().len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IpRange {
    start: Ip,
    end: Ip,
}

impl IpRange {
    /// Creates the inclusive range `[start, end]`; `None` if
    /// `start > end`.
    pub fn new(start: Ip, end: Ip) -> Option<IpRange> {
        (start <= end).then_some(IpRange { start, end })
    }

    /// The whole IPv4 space as a range.
    pub const ALL: IpRange = IpRange {
        start: Ip::MIN,
        end: Ip::MAX,
    };

    /// First address.
    pub fn start(&self) -> Ip {
        self.start
    }

    /// Last address.
    pub fn end(&self) -> Ip {
        self.end
    }

    /// Number of addresses (≥ 1).
    pub fn len(&self) -> u64 {
        u64::from(self.end.value()) - u64::from(self.start.value()) + 1
    }

    /// Ranges are never empty (construction forbids it); provided for
    /// API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` if `ip` lies inside the range.
    pub fn contains(&self, ip: Ip) -> bool {
        self.start <= ip && ip <= self.end
    }

    /// The minimal list of disjoint CIDR prefixes exactly covering the
    /// range, in address order (the classical greedy: repeatedly take
    /// the largest aligned block that fits).
    pub fn to_prefixes(&self) -> Vec<Prefix> {
        let mut out = Vec::new();
        let mut cur = u64::from(self.start.value());
        let end = u64::from(self.end.value());
        while cur <= end {
            // largest power-of-two block aligned at `cur`…
            let align = if cur == 0 { 64 } else { cur.trailing_zeros() };
            // …that also fits in the remaining span
            let remaining = end - cur + 1;
            let fit = 63 - remaining.leading_zeros();
            let bits = align.min(fit).min(32);
            let len = (32 - bits) as u8;
            out.push(
                Prefix::new(Ip::new(cur as u32), len).expect("alignment guarantees no host bits"), // hotspots-lint: allow(panic-path) reason="alignment guarantees no host bits"
            );
            cur += 1u64 << bits;
        }
        out
    }
}

impl fmt::Display for IpRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.start, self.end)
    }
}

impl From<Prefix> for IpRange {
    fn from(p: Prefix) -> IpRange {
        IpRange {
            start: p.base(),
            end: p.last_ip(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ip(s: &str) -> Ip {
        s.parse().unwrap()
    }

    #[test]
    fn construction_rules() {
        assert!(IpRange::new(ip("2.0.0.0"), ip("1.0.0.0")).is_none());
        let single = IpRange::new(ip("1.2.3.4"), ip("1.2.3.4")).unwrap();
        assert_eq!(single.len(), 1);
        assert_eq!(IpRange::ALL.len(), 1 << 32);
    }

    #[test]
    fn aligned_range_is_one_prefix() {
        let r: IpRange = "10.0.0.0/8".parse::<Prefix>().unwrap().into();
        assert_eq!(r.to_prefixes(), vec!["10.0.0.0/8".parse().unwrap()]);
        assert_eq!(IpRange::ALL.to_prefixes(), vec![Prefix::ALL]);
    }

    #[test]
    fn classic_decomposition() {
        let r = IpRange::new(ip("10.0.0.3"), ip("10.0.0.10")).unwrap();
        let cover: Vec<String> = r.to_prefixes().iter().map(|p| p.to_string()).collect();
        assert_eq!(
            cover,
            ["10.0.0.3/32", "10.0.0.4/30", "10.0.0.8/31", "10.0.0.10/32"]
        );
    }

    #[test]
    fn decomposition_at_space_edges() {
        let top = IpRange::new(ip("255.255.255.254"), Ip::MAX).unwrap();
        assert_eq!(
            top.to_prefixes(),
            vec!["255.255.255.254/31".parse().unwrap()]
        );
        let bottom = IpRange::new(Ip::MIN, ip("0.0.0.2")).unwrap();
        let cover: Vec<String> = bottom.to_prefixes().iter().map(|p| p.to_string()).collect();
        assert_eq!(cover, ["0.0.0.0/31", "0.0.0.2/32"]);
    }

    proptest! {
        #[test]
        fn decomposition_covers_exactly(a in any::<u32>(), b in any::<u32>()) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let r = IpRange::new(Ip::new(lo), Ip::new(hi)).unwrap();
            let cover = r.to_prefixes();
            // disjoint, ordered, total size matches
            let total: u64 = cover.iter().map(|p| p.size()).sum();
            prop_assert_eq!(total, r.len());
            for w in cover.windows(2) {
                prop_assert!(w[0].last_ip() < w[1].base());
            }
            prop_assert_eq!(cover.first().unwrap().base(), r.start());
            prop_assert_eq!(cover.last().unwrap().last_ip(), r.end());
        }

        #[test]
        fn decomposition_is_minimal_enough(a in any::<u32>(), span in 0u32..100_000) {
            // a cover of an N-address range never needs more than
            // 2·log2(N)+2 prefixes
            let lo = a;
            let hi = a.saturating_add(span);
            let r = IpRange::new(Ip::new(lo), Ip::new(hi)).unwrap();
            let bound = 2 * (64 - r.len().leading_zeros()) as usize + 2;
            prop_assert!(r.to_prefixes().len() <= bound);
        }

        #[test]
        fn membership_agrees_with_cover(a in any::<u32>(), b in any::<u32>(), probe in any::<u32>()) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let r = IpRange::new(Ip::new(lo), Ip::new(hi)).unwrap();
            let ip = Ip::new(probe);
            let in_cover = r.to_prefixes().iter().any(|p| p.contains(ip));
            prop_assert_eq!(r.contains(ip), in_cover);
        }
    }
}
