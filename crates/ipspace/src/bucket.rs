//! Histogram bucket keys for aggregating observations by /24, /16, or /8.
//!
//! The paper's measurement figures plot "observed unique source IPs by
//! destination /24". These light-weight keys make those aggregations cheap:
//! a [`Bucket24`] is just the top 24 bits of an address, and buckets sort in
//! address order, so a sorted map over buckets *is* the figure's x-axis.

use std::fmt;

use crate::ip::Ip;
use crate::prefix::Prefix;

macro_rules! bucket_type {
    ($(#[$doc:meta])* $name:ident, bits = $bits:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        #[cfg_attr(feature = "serde", serde(transparent))]
        pub struct $name(u32);

        impl $name {
            /// Number of network bits in this bucket granularity.
            pub const BITS: u8 = $bits;

            /// Returns the bucket containing `ip`.
            #[inline]
            pub const fn of(ip: Ip) -> $name {
                Self::of_value(ip.value())
            }

            /// Returns the bucket containing the address with numeric value
            /// `value`.
            #[inline]
            pub const fn of_value(value: u32) -> $name {
                $name(value >> (32 - $bits))
            }

            /// Returns the bucket's dense index: buckets of one granularity
            /// tile the address space, so indices run from `0` to
            /// `2^BITS - 1` in address order.
            #[inline]
            pub const fn index(self) -> u32 {
                self.0
            }

            /// Reconstructs a bucket from a dense [`index`](Self::index).
            ///
            /// # Panics
            ///
            /// Panics if `index >= 2^BITS`.
            #[inline]
            pub fn from_index(index: u32) -> $name {
                assert!(
                    u64::from(index) < (1u64 << $bits),
                    "bucket index {index} out of range for /{}",
                    $bits
                );
                $name(index)
            }

            /// The first (lowest) address in the bucket.
            #[inline]
            pub const fn first_ip(self) -> Ip {
                Ip::new(self.0 << (32 - $bits))
            }

            /// The CIDR prefix this bucket corresponds to.
            #[inline]
            pub fn prefix(self) -> Prefix {
                Prefix::new(self.first_ip(), $bits)
                    .expect("bucket base has no host bits by construction") // hotspots-lint: allow(panic-path) reason="bucket base has no host bits by construction"
            }

            /// Returns `true` if `ip` falls inside the bucket.
            #[inline]
            pub const fn contains(self, ip: Ip) -> bool {
                Self::of(ip).0 == self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}/{}", self.first_ip(), $bits)
            }
        }

        impl From<Ip> for $name {
            fn from(ip: Ip) -> $name {
                $name::of(ip)
            }
        }
    };
}

bucket_type! {
    /// A /24 aggregation bucket (256 addresses), the granularity of the
    /// paper's "observed unique source IPs by destination /24" figures.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_ipspace::{Bucket24, Ip};
    ///
    /// let b = Bucket24::of(Ip::from_octets(10, 1, 2, 200));
    /// assert!(b.contains(Ip::from_octets(10, 1, 2, 3)));
    /// assert!(!b.contains(Ip::from_octets(10, 1, 3, 3)));
    /// assert_eq!(b.to_string(), "10.1.2.0/24");
    /// ```
    Bucket24, bits = 24
}

bucket_type! {
    /// A /16 aggregation bucket (65,536 addresses). Hit-lists in the paper's
    /// simulations are lists of /16 networks.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_ipspace::{Bucket16, Ip};
    ///
    /// let b = Bucket16::of(Ip::from_octets(192, 168, 3, 4));
    /// assert_eq!(b.to_string(), "192.168.0.0/16");
    /// ```
    Bucket16, bits = 16
}

bucket_type! {
    /// A /8 aggregation bucket (16,777,216 addresses). The CodeRedII
    /// vulnerable population clusters in 47 /8 networks.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_ipspace::{Bucket8, Ip};
    ///
    /// let b = Bucket8::of(Ip::from_octets(192, 0, 2, 1));
    /// assert_eq!(b.index(), 192);
    /// ```
    Bucket8, bits = 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket24_index_round_trip() {
        let b = Bucket24::of(Ip::from_octets(1, 2, 3, 99));
        assert_eq!(Bucket24::from_index(b.index()), b);
        assert_eq!(b.first_ip(), Ip::from_octets(1, 2, 3, 0));
    }

    #[test]
    fn bucket16_prefix() {
        let b = Bucket16::of(Ip::from_octets(172, 16, 9, 9));
        let p = b.prefix();
        assert_eq!(p.to_string(), "172.16.0.0/16");
        assert_eq!(p.len(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bucket8_from_index_panics_out_of_range() {
        let _ = Bucket8::from_index(256);
    }

    #[test]
    fn buckets_order_by_address() {
        let lo = Bucket24::of(Ip::from_octets(9, 0, 0, 0));
        let hi = Bucket24::of(Ip::from_octets(10, 0, 0, 0));
        assert!(lo < hi);
    }

    proptest! {
        #[test]
        fn bucket_contains_its_members(v in any::<u32>()) {
            let ip = Ip::new(v);
            prop_assert!(Bucket24::of(ip).contains(ip));
            prop_assert!(Bucket16::of(ip).contains(ip));
            prop_assert!(Bucket8::of(ip).contains(ip));
        }

        #[test]
        fn bucket_prefix_agrees_with_contains(v in any::<u32>(), w in any::<u32>()) {
            let a = Ip::new(v);
            let b = Ip::new(w);
            prop_assert_eq!(Bucket24::of(a).contains(b), Bucket24::of(a).prefix().contains(b));
        }

        #[test]
        fn nested_bucket_consistency(v in any::<u32>()) {
            let ip = Ip::new(v);
            // the /24's first address lies inside the /16 and /8 buckets
            prop_assert!(Bucket16::of(ip).contains(Bucket24::of(ip).first_ip()));
            prop_assert!(Bucket8::of(ip).contains(Bucket16::of(ip).first_ip()));
        }
    }
}
