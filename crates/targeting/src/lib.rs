//! Worm target-generation strategies (the paper's *algorithmic factors*).
//!
//! Every self-propagating threat must answer one question per probe:
//! *which address next?* This crate implements the answers studied in the
//! paper, all behind the [`TargetGenerator`] trait:
//!
//! | Strategy | Paper role |
//! |---|---|
//! | [`UniformScanner`] | the null model every hotspot deviates from |
//! | [`HitListScanner`] | botnet-style targeted scanning (Table 1, Fig 5a/5b) |
//! | [`LocalPreference`] | generic mask/weight preference tables |
//! | [`CodeRed2Scanner`] | CodeRedII's 1/8–4/8–3/8 table (Fig 4, Fig 5c) |
//! | [`BlasterScanner`] | sequential scan from a PRNG-chosen start (Fig 1) |
//! | [`SlammerScanner`] | the flawed LCG walk (Fig 2, Fig 3) |
//! | [`CodeRed1Scanner`] | the static-seed degenerate case (extension) |
//! | [`WittyScanner`] | the 16-bit-output LCG with unreachable space (extension) |
//! | [`PermutationScanner`] | Staniford-style permutation scanning (extension) |
//!
//! Generators are deterministic given their PRNG seed, so every experiment
//! in this workspace is reproducible bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use hotspots_prng::SplitMix;
//! use hotspots_targeting::{TargetGenerator, UniformScanner};
//!
//! let mut worm = UniformScanner::new(SplitMix::new(1));
//! let a = worm.next_target();
//! let b = worm.next_target();
//! assert_ne!(a, b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod blaster;
mod codered1;
mod codered2;
mod hitlist;
mod local_preference;
mod permutation;
mod slammer;
mod uniform;
mod witty;

pub use blaster::BlasterScanner;
pub use codered1::CodeRed1Scanner;
pub use codered2::CodeRed2Scanner;
pub use hitlist::{HitList, HitListError, HitListScanner};
pub use local_preference::{LocalPreference, PreferenceEntry};
pub use permutation::PermutationScanner;
pub use slammer::SlammerScanner;
pub use uniform::UniformScanner;
pub use witty::WittyScanner;

use hotspots_ipspace::Ip;

/// A source of probe target addresses.
///
/// Implementations model one infected host's targeting behavior; the
/// simulator drives one generator per infected host.
pub trait TargetGenerator {
    /// Produces the next target address.
    fn next_target(&mut self) -> Ip;

    /// Appends the next `n` targets to `out`.
    ///
    /// The batch **must** be the exact sequence `n` calls to
    /// [`TargetGenerator::next_target`] would produce (the simulator
    /// relies on this for replay determinism across batch sizes). The
    /// default implementation loops `next_target`; hot generators
    /// override it so the per-probe virtual dispatch and PRNG state
    /// round-trips collapse into one monomorphized loop.
    fn fill_targets(&mut self, n: usize, out: &mut Vec<Ip>) {
        out.reserve(n);
        for _ in 0..n {
            out.push(self.next_target());
        }
    }

    /// A short human-readable strategy name (for experiment output).
    fn strategy(&self) -> &'static str;
}

/// Convenience: collect the next `n` targets from a generator.
///
/// # Examples
///
/// ```
/// use hotspots_prng::SplitMix;
/// use hotspots_targeting::{targets, UniformScanner};
///
/// let mut g = UniformScanner::new(SplitMix::new(9));
/// assert_eq!(targets(&mut g, 5).len(), 5);
/// ```
pub fn targets<G: TargetGenerator + ?Sized>(generator: &mut G, n: usize) -> Vec<Ip> {
    (0..n).map(|_| generator.next_target()).collect()
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use hotspots_prng::{SplitMix, SqlsortDll};
    use proptest::prelude::*;

    /// Every overridden `fill_targets` must emit exactly the sequence the
    /// scalar `next_target` loop would — including when the batch is
    /// split at an arbitrary point (state carries across batches).
    fn assert_batch_equals_scalar<G>(generator: &G, n: usize, split: usize)
    where
        G: TargetGenerator + Clone + std::fmt::Debug,
    {
        let mut scalar = generator.clone();
        let expected = targets(&mut scalar, n);

        let mut batched = generator.clone();
        let mut out = Vec::new();
        let split = split.min(n);
        batched.fill_targets(split, &mut out);
        batched.fill_targets(n - split, &mut out);
        assert_eq!(out, expected, "{} batch diverges", generator.strategy());
    }

    proptest! {
        #[test]
        fn fill_targets_matches_next_target(seed in any::<u64>(), n in 0usize..200, split in 0usize..200) {
            let src = Ip::from_octets(192, 168, 0, 99);
            assert_batch_equals_scalar(&UniformScanner::new(SplitMix::new(seed)), n, split);
            assert_batch_equals_scalar(&SlammerScanner::new(SqlsortDll::Gold, seed as u32), n, split);
            assert_batch_equals_scalar(&CodeRed2Scanner::new(src, SplitMix::new(seed)), n, split);
            let list = HitList::new(vec![
                "10.0.0.0/24".parse().unwrap(),
                "203.0.113.0/28".parse().unwrap(),
            ])
            .unwrap();
            assert_batch_equals_scalar(&HitListScanner::new(list, SplitMix::new(seed)), n, split);
            let prefs = vec![
                PreferenceEntry { mask: 0xffff_0000, weight: 3 },
                PreferenceEntry { mask: 0xff00_0000, weight: 4 },
                PreferenceEntry { mask: 0, weight: 1 },
            ];
            assert_batch_equals_scalar(&LocalPreference::new(src, prefs, SplitMix::new(seed)), n, split);
        }

        #[test]
        fn kernelized_generators_match_across_chunk_boundaries(
            seed in any::<u64>(),
            n in 200usize..700,
            split in 0usize..700,
        ) {
            // The lane kernels work in fixed chunks (256 states for the
            // LCG/uniform paths, 128 attempts for CodeRedII); batches
            // larger than one chunk — and splits landing mid-chunk — must
            // still replay the scalar sequence exactly.
            let src = Ip::from_octets(192, 168, 0, 99);
            assert_batch_equals_scalar(&UniformScanner::new(SplitMix::new(seed)), n, split);
            assert_batch_equals_scalar(&SlammerScanner::new(SqlsortDll::Sp2, seed as u32), n, split);
            assert_batch_equals_scalar(&CodeRed2Scanner::new(src, SplitMix::new(seed)), n, split);
        }

        #[test]
        fn default_fill_targets_appends(seed in any::<u64>(), n in 0usize..64) {
            // a generator with no override still satisfies the contract
            let mut a = BlasterScanner::from_tick_count(Ip::from_octets(4, 4, 4, 4), seed as u32);
            let mut b = a;
            let mut out = vec![Ip::MIN]; // pre-existing content survives
            a.fill_targets(n, &mut out);
            prop_assert_eq!(out.len(), n + 1);
            prop_assert_eq!(&out[1..], &targets(&mut b, n)[..]);
        }
    }
}
