//! Worm target-generation strategies (the paper's *algorithmic factors*).
//!
//! Every self-propagating threat must answer one question per probe:
//! *which address next?* This crate implements the answers studied in the
//! paper, all behind the [`TargetGenerator`] trait:
//!
//! | Strategy | Paper role |
//! |---|---|
//! | [`UniformScanner`] | the null model every hotspot deviates from |
//! | [`HitListScanner`] | botnet-style targeted scanning (Table 1, Fig 5a/5b) |
//! | [`LocalPreference`] | generic mask/weight preference tables |
//! | [`CodeRed2Scanner`] | CodeRedII's 1/8–4/8–3/8 table (Fig 4, Fig 5c) |
//! | [`BlasterScanner`] | sequential scan from a PRNG-chosen start (Fig 1) |
//! | [`SlammerScanner`] | the flawed LCG walk (Fig 2, Fig 3) |
//! | [`CodeRed1Scanner`] | the static-seed degenerate case (extension) |
//! | [`WittyScanner`] | the 16-bit-output LCG with unreachable space (extension) |
//! | [`PermutationScanner`] | Staniford-style permutation scanning (extension) |
//!
//! Generators are deterministic given their PRNG seed, so every experiment
//! in this workspace is reproducible bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use hotspots_prng::SplitMix;
//! use hotspots_targeting::{TargetGenerator, UniformScanner};
//!
//! let mut worm = UniformScanner::new(SplitMix::new(1));
//! let a = worm.next_target();
//! let b = worm.next_target();
//! assert_ne!(a, b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod blaster;
mod codered1;
mod codered2;
mod hitlist;
mod local_preference;
mod permutation;
mod slammer;
mod uniform;
mod witty;

pub use blaster::BlasterScanner;
pub use codered1::CodeRed1Scanner;
pub use codered2::CodeRed2Scanner;
pub use hitlist::{HitList, HitListError, HitListScanner};
pub use local_preference::{LocalPreference, PreferenceEntry};
pub use permutation::PermutationScanner;
pub use slammer::SlammerScanner;
pub use uniform::UniformScanner;
pub use witty::WittyScanner;

use hotspots_ipspace::Ip;

/// A source of probe target addresses.
///
/// Implementations model one infected host's targeting behavior; the
/// simulator drives one generator per infected host.
pub trait TargetGenerator {
    /// Produces the next target address.
    fn next_target(&mut self) -> Ip;

    /// A short human-readable strategy name (for experiment output).
    fn strategy(&self) -> &'static str;
}

/// Convenience: collect the next `n` targets from a generator.
///
/// # Examples
///
/// ```
/// use hotspots_prng::SplitMix;
/// use hotspots_targeting::{targets, UniformScanner};
///
/// let mut g = UniformScanner::new(SplitMix::new(9));
/// assert_eq!(targets(&mut g, 5).len(), 5);
/// ```
pub fn targets<G: TargetGenerator + ?Sized>(generator: &mut G, n: usize) -> Vec<Ip> {
    (0..n).map(|_| generator.next_target()).collect()
}
