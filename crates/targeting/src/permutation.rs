//! Permutation scanning (Staniford et al.), as a comparison strategy.

use hotspots_ipspace::Ip;
use hotspots_prng::cycles::AffineMap;
use hotspots_prng::Prng32;

use crate::TargetGenerator;

/// A permutation scanner in the style of Staniford, Paxson & Weaver's
/// "How to 0wn the Internet in Your Spare Time": all instances share one
/// pseudo-random permutation of the address space (here an affine map with
/// a full-period increment); each instance walks the permutation from a
/// random start and *restarts* at a fresh random position after a fixed
/// number of steps (modelling the "hit an already-infected host →
/// re-randomize" rule without global coordination state).
///
/// This is deliberately a *well-built* non-uniform strategy: it covers the
/// space without the pathological cycle structure of Slammer, so it serves
/// as the ablation contrast to the flawed LCG (see the `bench` crate's
/// ablations).
///
/// # Examples
///
/// ```
/// use hotspots_prng::SplitMix;
/// use hotspots_targeting::{PermutationScanner, TargetGenerator};
///
/// let mut worm = PermutationScanner::new(SplitMix::new(5), 1 << 16);
/// let a = worm.next_target();
/// let b = worm.next_target();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct PermutationScanner<P> {
    map: AffineMap,
    state: u32,
    steps_left: u64,
    restart_after: u64,
    prng: P,
}

impl<P: Prng32> PermutationScanner<P> {
    /// The shared permutation: an affine map with a full-period-style
    /// increment (odd multiplier ≡ 5 mod 8, increment ≡ 1 mod 2 — no
    /// fixed-point pathologies within a walk of practical length).
    const MUL: u32 = 1_664_525; // Knuth/Numerical Recipes constant
    const INC: u32 = 1_013_904_223;

    /// Creates a scanner that walks the shared permutation, restarting at
    /// a random point every `restart_after` probes.
    ///
    /// # Panics
    ///
    /// Panics if `restart_after == 0`.
    pub fn new(mut prng: P, restart_after: u64) -> PermutationScanner<P> {
        assert!(restart_after > 0, "restart_after must be positive");
        let map =
            AffineMap::new(Self::MUL, Self::INC, 32).expect("constants form a valid permutation"); // hotspots-lint: allow(panic-path) reason="constants form a valid permutation"
        let state = prng.next_u32();
        PermutationScanner {
            map,
            state,
            steps_left: restart_after,
            restart_after,
            prng,
        }
    }

    /// The underlying permutation map (shared across all instances).
    pub fn map(&self) -> AffineMap {
        self.map
    }
}

impl<P: Prng32> TargetGenerator for PermutationScanner<P> {
    fn next_target(&mut self) -> Ip {
        if self.steps_left == 0 {
            self.state = self.prng.next_u32();
            self.steps_left = self.restart_after;
        }
        self.state = self.map.apply(self.state);
        self.steps_left -= 1;
        Ip::new(self.state)
    }

    fn strategy(&self) -> &'static str {
        "permutation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets;
    use hotspots_prng::SplitMix;
    use hotspots_stats::uniformity;
    use std::collections::HashSet;

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_restart_panics() {
        let _ = PermutationScanner::new(SplitMix::new(1), 0);
    }

    #[test]
    fn no_repeats_within_one_walk() {
        let mut worm = PermutationScanner::new(SplitMix::new(2), 4096);
        let ts = targets(&mut worm, 4096);
        let set: HashSet<Ip> = ts.iter().copied().collect();
        assert_eq!(set.len(), 4096, "permutation walk revisited a target");
    }

    #[test]
    fn restart_changes_region() {
        let mut worm = PermutationScanner::new(SplitMix::new(3), 4);
        let first_walk = targets(&mut worm, 4);
        let second_walk = targets(&mut worm, 4);
        assert_ne!(first_walk, second_walk);
    }

    #[test]
    fn aggregate_coverage_is_near_uniform() {
        // Many instances with restarts: per-/8 histogram should be flat —
        // the contrast with Slammer's cycle-skewed coverage.
        let mut bins = vec![0u64; 256];
        for seed in 0..64u64 {
            let mut worm = PermutationScanner::new(SplitMix::new(seed), 512);
            for t in targets(&mut worm, 2048) {
                bins[t.bucket8().index() as usize] += 1;
            }
        }
        assert!(
            uniformity::gini(&bins) < 0.1,
            "gini {}",
            uniformity::gini(&bins)
        );
    }

    #[test]
    fn shared_map_is_identical_across_instances() {
        let a = PermutationScanner::new(SplitMix::new(1), 10);
        let b = PermutationScanner::new(SplitMix::new(2), 10);
        assert_eq!(a.map(), b.map());
    }
}
