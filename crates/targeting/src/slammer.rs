//! The Slammer worm as a [`TargetGenerator`].

use hotspots_ipspace::Ip;
use hotspots_prng::{SlammerPrng, SqlsortDll};

use crate::TargetGenerator;

/// A Slammer instance: a thin [`TargetGenerator`] wrapper around
/// [`SlammerPrng`].
///
/// All the interesting structure lives in the PRNG itself — the flawed
/// increments decompose the state space into 64 cycles (see
/// [`hotspots_prng::cycles`]), so whole trajectories are determined by
/// which cycle the seed lands on.
///
/// # Examples
///
/// ```
/// use hotspots_prng::SqlsortDll;
/// use hotspots_targeting::{SlammerScanner, TargetGenerator};
///
/// let mut worm = SlammerScanner::new(SqlsortDll::Gold, 0xbeef);
/// let t = worm.next_target();
/// # let _ = t;
/// assert_eq!(worm.strategy(), "slammer");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlammerScanner {
    prng: SlammerPrng,
}

impl SlammerScanner {
    /// Creates an instance on a host running the given `sqlsort.dll`
    /// version, seeded with `seed`.
    pub const fn new(dll: SqlsortDll, seed: u32) -> SlammerScanner {
        SlammerScanner {
            prng: SlammerPrng::new(dll, seed),
        }
    }

    /// The DLL version driving the flawed increment.
    pub const fn dll(&self) -> SqlsortDll {
        self.prng.dll()
    }

    /// The current LCG state.
    pub const fn state(&self) -> u32 {
        self.prng.state()
    }
}

impl TargetGenerator for SlammerScanner {
    #[inline]
    fn next_target(&mut self) -> Ip {
        self.prng.next_target()
    }

    fn fill_targets(&mut self, n: usize, out: &mut Vec<Ip>) {
        self.prng.fill_targets(n, out);
    }

    fn strategy(&self) -> &'static str {
        "slammer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets;
    use hotspots_prng::cycles::AffineMap;

    #[test]
    fn wraps_slammer_prng_exactly() {
        let mut scanner = SlammerScanner::new(SqlsortDll::Sp2, 7);
        let mut raw = SlammerPrng::new(SqlsortDll::Sp2, 7);
        for _ in 0..64 {
            assert_eq!(scanner.next_target(), raw.next_target());
        }
    }

    #[test]
    fn trajectory_stays_on_one_cycle() {
        let map = AffineMap::slammer(SqlsortDll::Gold);
        let seed = 0x0abc_def1;
        let id = map.cycle_id(map.apply(seed)).unwrap();
        let mut worm = SlammerScanner::new(SqlsortDll::Gold, seed);
        for t in targets(&mut worm, 1000) {
            assert_eq!(map.cycle_id(t.to_le_state()).unwrap(), id);
        }
    }

    #[test]
    fn short_cycle_seed_behaves_like_targeted_dos() {
        // Find a seed on a tiny cycle (valuation 28 → length 4) and verify
        // the instance cycles over exactly 4 addresses.
        let map = AffineMap::slammer(SqlsortDll::Sp3);
        let c = map.fixed_point().unwrap();
        let seed = c.wrapping_add(1 << 28);
        assert_eq!(map.cycle_length(seed).unwrap(), 4);
        let mut worm = SlammerScanner::new(SqlsortDll::Sp3, seed);
        let seen: std::collections::HashSet<Ip> = targets(&mut worm, 400).into_iter().collect();
        assert_eq!(seen.len(), 4);
    }
}
