//! The original CodeRed (v1) scanner: the static-seed blunder.

use hotspots_ipspace::Ip;
use hotspots_prng::{MsvcrtRand, Prng32};

use crate::TargetGenerator;

/// The first CodeRed variant's target generator. Its author seeded the
/// LCG with a **hard-coded constant**, so every instance on the planet
/// walked the *identical* pseudo-random sequence of targets: the
/// degenerate extreme of the poor-entropy algorithmic factor — adding
/// hosts adds probe *volume* but zero new *coverage*, and the same
/// addresses get hammered worldwide. (The July 19th re-release fixed the
/// seed, which is what let CodeRed v2 actually spread.)
///
/// # Examples
///
/// ```
/// use hotspots_targeting::{CodeRed1Scanner, TargetGenerator};
///
/// let mut anywhere = CodeRed1Scanner::new();
/// let mut elsewhere = CodeRed1Scanner::new();
/// assert_eq!(anywhere.next_target(), elsewhere.next_target());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CodeRed1Scanner {
    prng: MsvcrtRand,
}

impl CodeRed1Scanner {
    /// The hard-coded seed every instance shares (a representative
    /// constant; the bug is the *sharing*, not the value).
    pub const STATIC_SEED: u32 = 0x12345678;

    /// Creates an instance — necessarily identical to every other one.
    pub fn new() -> CodeRed1Scanner {
        CodeRed1Scanner {
            prng: MsvcrtRand::with_seed(Self::STATIC_SEED),
        }
    }

    /// How many probes this instance has consumed (derivable via state;
    /// exposed for phase-alignment in tests and the simulator).
    pub fn state(&self) -> u32 {
        self.prng.state()
    }
}

impl Default for CodeRed1Scanner {
    fn default() -> CodeRed1Scanner {
        CodeRed1Scanner::new()
    }
}

impl TargetGenerator for CodeRed1Scanner {
    #[inline]
    fn next_target(&mut self) -> Ip {
        Ip::new(self.prng.next_u32())
    }

    fn strategy(&self) -> &'static str {
        "codered1-static-seed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets;
    use std::collections::BTreeSet;

    #[test]
    fn every_instance_is_identical() {
        let mut a = CodeRed1Scanner::new();
        let mut b = CodeRed1Scanner::default();
        for _ in 0..256 {
            assert_eq!(a.next_target(), b.next_target());
        }
    }

    #[test]
    fn extra_instances_add_no_coverage() {
        // one instance's first 1000 targets == the union of five
        // instances' first 1000 targets each
        let single: BTreeSet<Ip> = targets(&mut CodeRed1Scanner::new(), 1000)
            .into_iter()
            .collect();
        let mut union = BTreeSet::new();
        for _ in 0..5 {
            union.extend(targets(&mut CodeRed1Scanner::new(), 1000));
        }
        assert_eq!(single, union, "static seed means zero marginal coverage");
    }

    #[test]
    fn sequence_is_spread_but_fixed() {
        // the sequence itself looks random (spread over /8s) — the flaw
        // is invisible to anyone watching a single instance
        let ts = targets(&mut CodeRed1Scanner::new(), 4_096);
        let octets: BTreeSet<u8> = ts.iter().map(|t| t.octets()[0]).collect();
        assert!(
            octets.len() > 200,
            "only {} distinct first octets",
            octets.len()
        );
    }
}
