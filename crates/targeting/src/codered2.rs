//! The CodeRedII targeting algorithm.

use hotspots_ipspace::Ip;
use hotspots_prng::Prng32;

use crate::TargetGenerator;

/// CodeRedII's target generator, reconstructed from the disassembled
/// propagation routine:
///
/// * with probability **3/8** the target keeps the source's /16
///   (`mask 0xffff0000`),
/// * with probability **4/8** it keeps the source's /8
///   (`mask 0xff000000`),
/// * with probability **1/8** it is completely random,
///
/// and candidates whose first octet is `127` (loopback) or `224`
/// (multicast base) — or that equal the worm's own address — are thrown
/// away and regenerated.
///
/// The enormous /8 + /16 preference is exactly what turns NATed hosts into
/// hotspot generators: a CodeRedII instance behind a NAT at
/// `192.168.x.y` spends half its probes inside `192.0.0.0/8`, and since
/// `192.168.0.0/16` is the only private /16 there, those probes leak to
/// *public* `192/8` addresses (the paper's M-block spike, Fig 4).
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::Ip;
/// use hotspots_prng::SplitMix;
/// use hotspots_targeting::{CodeRed2Scanner, TargetGenerator};
///
/// let mut worm = CodeRed2Scanner::new(Ip::from_octets(192, 168, 0, 3), SplitMix::new(8));
/// let t = worm.next_target();
/// assert_ne!(t.octets()[0], 127);
/// ```
#[derive(Debug, Clone)]
pub struct CodeRed2Scanner<P> {
    source: Ip,
    prng: P,
}

impl<P: Prng32> CodeRed2Scanner<P> {
    /// Masks indexed by the 3-bit selector: 0 → random, 1–4 → /8, 5–7 → /16.
    const MASKS: [u32; 8] = [
        0x0000_0000,
        0xff00_0000,
        0xff00_0000,
        0xff00_0000,
        0xff00_0000,
        0xffff_0000,
        0xffff_0000,
        0xffff_0000,
    ];

    /// Creates a CodeRedII instance running on a host at `source`.
    pub fn new(source: Ip, prng: P) -> CodeRed2Scanner<P> {
        CodeRed2Scanner { source, prng }
    }

    /// The infected host's own address.
    pub fn source(&self) -> Ip {
        self.source
    }
}

impl<P: Prng32> CodeRed2Scanner<P> {
    #[inline]
    fn generate(&mut self) -> Ip {
        // The regeneration loop terminates almost surely because the mask
        // is re-drawn each attempt and 1/8 of draws are fully random.
        loop {
            let selector = (self.prng.next_u32() >> 29) as usize; // top 3 bits
            let mask = Self::MASKS[selector];
            let random = self.prng.next_u32();
            let candidate = Ip::new((self.source.value() & mask) | (random & !mask));
            let first = candidate.octets()[0];
            if first == 127 || first == 224 || candidate == self.source {
                continue;
            }
            return candidate;
        }
    }
}

impl<P: Prng32> TargetGenerator for CodeRed2Scanner<P> {
    fn next_target(&mut self) -> Ip {
        self.generate()
    }

    fn fill_targets(&mut self, n: usize, out: &mut Vec<Ip>) {
        // Chunked rejection sampling with *exact* PRNG consumption: each
        // round bulk-draws `min(remaining, CHUNK)` attempts (two words
        // per attempt, interleaved selector/random exactly like the
        // scalar loop). Because `remaining` successes need at least
        // `remaining` attempts, the bulk draw never reads past the word
        // the scalar loop would stop at — the round that reaches
        // `remaining == 0` accepted every one of its attempts, so its
        // last draw *is* the n-th success and the final PRNG state
        // matches the scalar walk bit-for-bit.
        const CHUNK: usize = 128;
        let mut words = [0u32; 2 * CHUNK];
        let mut cand = [0u32; CHUNK];
        let mut keep = [0u32; CHUNK];
        out.reserve(n);
        let src = self.source.value();
        let mut remaining = n;
        while remaining > 0 {
            let attempts = remaining.min(CHUNK);
            self.prng.fill_u32(&mut words[..2 * attempts]);
            // Branch-free candidate + validity pass: the selector→mask
            // table collapses to two range tests (1..=7 keeps the /8,
            // 5..=7 additionally keeps the /16), and the three rejection
            // rules become an accept bit.
            for i in 0..attempts {
                let selector = words[2 * i] >> 29;
                let mask =
                    u32::from(selector >= 1) * 0xff00_0000 + u32::from(selector >= 5) * 0x00ff_0000;
                let candidate = (src & mask) | (words[2 * i + 1] & !mask);
                let first = candidate >> 24;
                cand[i] = candidate;
                keep[i] =
                    u32::from(first != 127) & u32::from(first != 224) & u32::from(candidate != src);
            }
            // Compact the survivors in order; `accepted <= attempts <=
            // remaining` by construction.
            let mut accepted = 0usize;
            for i in 0..attempts {
                cand[accepted] = cand[i];
                accepted += keep[i] as usize;
            }
            out.extend(cand[..accepted].iter().map(|&c| Ip::new(c)));
            remaining -= accepted;
        }
    }

    fn strategy(&self) -> &'static str {
        "codered2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspots_prng::SplitMix;

    #[test]
    fn mask_mixture_matches_disassembly() {
        // 1/8 random, 4/8 same /8, 3/8 same /16 — measured empirically.
        let src = Ip::from_octets(57, 20, 3, 9);
        let mut worm = CodeRed2Scanner::new(src, SplitMix::new(1234));
        let n = 80_000;
        let mut same16 = 0u32;
        let mut same8only = 0u32;
        let mut elsewhere = 0u32;
        for _ in 0..n {
            let t = worm.next_target();
            let o = t.octets();
            if o[0] == 57 && o[1] == 20 {
                same16 += 1;
            } else if o[0] == 57 {
                same8only += 1;
            } else {
                elsewhere += 1;
            }
        }
        let nf = f64::from(n);
        // same-/16 probes: 3/8 by mask plus a sliver of random collisions
        assert!((f64::from(same16) / nf - 0.375).abs() < 0.02);
        // same-/8-different-/16: 4/8 · 255/256 (mask /8 randomizes B)
        assert!((f64::from(same8only) / nf - 0.498).abs() < 0.02);
        assert!((f64::from(elsewhere) / nf - 0.124).abs() < 0.02);
    }

    #[test]
    fn never_targets_loopback_multicast_or_self() {
        let src = Ip::from_octets(10, 1, 1, 1);
        let mut worm = CodeRed2Scanner::new(src, SplitMix::new(5));
        for _ in 0..50_000 {
            let t = worm.next_target();
            assert_ne!(t.octets()[0], 127);
            assert_ne!(t.octets()[0], 224);
            assert_ne!(t, src);
        }
    }

    #[test]
    fn source_in_avoided_slash8_still_terminates() {
        // A host at 127.0.0.1 (degenerate): /8 and /16 masked candidates
        // are always discarded, but the 1/8 random draws escape.
        let src = Ip::from_octets(127, 0, 0, 1);
        let mut worm = CodeRed2Scanner::new(src, SplitMix::new(3));
        for _ in 0..100 {
            let t = worm.next_target();
            assert_ne!(t.octets()[0], 127);
        }
    }

    #[test]
    fn nat_source_leaks_into_public_192_slash_8() {
        // THE CodeRedII hotspot mechanism: a NATed host at 192.168.0.x
        // sends ~50% of probes into 192/8, almost all of which are public.
        let src = Ip::from_octets(192, 168, 0, 99);
        let mut worm = CodeRed2Scanner::new(src, SplitMix::new(2024));
        let n = 40_000;
        let mut in_192_public = 0u32;
        for _ in 0..n {
            let t = worm.next_target();
            let o = t.octets();
            if o[0] == 192 && o[1] != 168 {
                in_192_public += 1;
            }
        }
        let frac = f64::from(in_192_public) / f64::from(n);
        // mask /8 (1/2 of probes) randomizes B: 255/256 of those leave /16.
        assert!(frac > 0.45, "leak fraction {frac} too small");
    }

    #[test]
    fn branch_free_mask_form_matches_table() {
        // The batch kernel replaces the MASKS lookup with two range
        // tests; they must agree for every selector value.
        for selector in 0u32..8 {
            let arithmetic =
                u32::from(selector >= 1) * 0xff00_0000 + u32::from(selector >= 5) * 0x00ff_0000;
            assert_eq!(
                arithmetic,
                CodeRed2Scanner::<SplitMix>::MASKS[selector as usize],
                "selector {selector}"
            );
        }
    }

    #[test]
    fn degenerate_source_batch_matches_scalar() {
        // 127.0.0.1 rejects 7/8 of attempts — the worst case for the
        // exact-consumption argument in fill_targets.
        let src = Ip::from_octets(127, 0, 0, 1);
        let mut scalar = CodeRed2Scanner::new(src, SplitMix::new(77));
        let mut batch = scalar.clone();
        let expect: Vec<Ip> = (0..500).map(|_| scalar.next_target()).collect();
        let mut got = Vec::new();
        batch.fill_targets(500, &mut got);
        assert_eq!(got, expect);
        assert_eq!(batch.next_target(), scalar.next_target());
    }

    #[test]
    fn deterministic_per_seed() {
        let src = Ip::from_octets(9, 9, 9, 9);
        let mut a = CodeRed2Scanner::new(src, SplitMix::new(6));
        let mut b = CodeRed2Scanner::new(src, SplitMix::new(6));
        for _ in 0..64 {
            assert_eq!(a.next_target(), b.next_target());
        }
    }
}
