//! The Blaster worm's sequential scanner.

use hotspots_ipspace::Ip;
use hotspots_prng::MsvcrtRand;

use crate::TargetGenerator;

/// Blaster's scanner, reconstructed from the decompiled worm: pick a
/// starting /24 once, then scan **sequentially upward forever**.
///
/// The start is chosen with msvcrt's `rand()` seeded by
/// `GetTickCount()`:
///
/// * with probability 0.4 the worm starts near its own address — it takes
///   the local `a.b.c.d`, and if `c > 20` subtracts `rand() % 20` from
///   `c`, starting at `a.b.c'.0`;
/// * otherwise it starts at a random `a.b.c.0` with
///   `a = 1 + rand() % 254`, `b = rand() % 254`, `c = rand() % 254`.
///
/// Because the tick-count seed is nearly constant on rebooted machines
/// (see [`hotspots_prng::entropy`]), the *random* branch is not random at
/// all across the infected population: hosts that rebooted at similar
/// uptimes choose the same starting /24s, producing the clustered spikes
/// of the paper's Figure 1. Sequential scanning then smears each spike
/// upward through the address space.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::Ip;
/// use hotspots_targeting::{BlasterScanner, TargetGenerator};
///
/// let mut worm = BlasterScanner::from_tick_count(Ip::from_octets(10, 0, 0, 5), 30_000);
/// let first = worm.next_target();
/// let second = worm.next_target();
/// assert_eq!(second, first.wrapping_add(1)); // strictly sequential
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlasterScanner {
    start: Ip,
    cursor: Ip,
}

impl BlasterScanner {
    /// Creates a Blaster instance on host `source` whose
    /// `GetTickCount()` returned `tick_count` at launch.
    pub fn from_tick_count(source: Ip, tick_count: u32) -> BlasterScanner {
        let start = Self::start_for_seed(source, tick_count);
        BlasterScanner {
            start,
            cursor: start,
        }
    }

    /// The start address Blaster derives from a given seed — the forward
    /// direction of the paper's seed↔hotspot correlation (its inverse
    /// lives in `hotspots::seed_inference`).
    pub fn start_for_seed(source: Ip, tick_count: u32) -> Ip {
        let mut rng = MsvcrtRand::with_seed(tick_count);
        let local = rng.rand_mod(10) >= 6; // 40% local, 60% random
        let [a, b, c] = if local {
            let [a, b, mut c, _] = source.octets();
            if c > 20 {
                c -= rng.rand_mod(20) as u8;
            }
            [a, b, c]
        } else {
            [
                (1 + rng.rand_mod(254)) as u8,
                rng.rand_mod(254) as u8,
                rng.rand_mod(254) as u8,
            ]
        };
        Ip::from_octets(a, b, c, 0)
    }

    /// The chosen starting address.
    pub fn start(&self) -> Ip {
        self.start
    }

    /// The next address that will be probed.
    pub fn cursor(&self) -> Ip {
        self.cursor
    }
}

impl TargetGenerator for BlasterScanner {
    #[inline]
    fn next_target(&mut self) -> Ip {
        let t = self.cursor;
        self.cursor = self.cursor.wrapping_add(1);
        t
    }

    fn strategy(&self) -> &'static str {
        "blaster-sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    const SRC: Ip = Ip::from_octets(141, 20, 99, 7);

    #[test]
    fn scan_is_strictly_sequential_and_wraps() {
        let mut worm = BlasterScanner {
            start: Ip::MAX,
            cursor: Ip::MAX,
        };
        assert_eq!(worm.next_target(), Ip::MAX);
        assert_eq!(worm.next_target(), Ip::MIN);
        assert_eq!(worm.next_target(), Ip::new(1));
    }

    #[test]
    fn start_is_on_a_slash24_boundary() {
        for tick in [1_000u32, 30_000, 31_000, 150_000, 9_999_999] {
            let s = BlasterScanner::start_for_seed(SRC, tick);
            assert_eq!(s.octets()[3], 0, "tick {tick} start {s}");
        }
    }

    #[test]
    fn local_branch_stays_near_source() {
        // Scan many seeds; the ~40% local picks must share a.b with SRC
        // and have c within 20 below the source's c.
        let mut local = 0u32;
        let total = 10_000u32;
        for tick in 0..total {
            let s = BlasterScanner::start_for_seed(SRC, tick);
            let o = s.octets();
            if o[0] == 141 && o[1] == 20 {
                local += 1;
                assert!(o[2] <= 99 && o[2] > 99 - 20, "c={} out of band", o[2]);
            }
        }
        let frac = f64::from(local) / f64::from(total);
        assert!((0.35..0.45).contains(&frac), "local fraction {frac}");
    }

    #[test]
    fn narrow_seed_band_restricts_start_set() {
        // The Figure-1 mechanism: hosts rebooting with tick counts in a
        // ±1s band around 30s can only ever choose from a tiny,
        // *predictable* set of starting /24s — at most one per tick value,
        // i.e. a few thousand out of the ~16.6M possible /24s.
        let band = 28_000..32_000u32;
        let mut starts: HashMap<Ip, u32> = HashMap::new();
        for tick in band.clone() {
            *starts
                .entry(BlasterScanner::start_for_seed(SRC, tick))
                .or_insert(0) += 1;
        }
        assert!(starts.len() as u32 <= band.end - band.start);
        let fraction_of_slash24s = starts.len() as f64 / f64::from(1u32 << 24);
        assert!(
            fraction_of_slash24s < 3e-4,
            "start set covers {fraction_of_slash24s} of /24 space"
        );
        // Two hosts with the same tick count collide on the same start —
        // the collision that builds Figure 1's spikes.
        for tick in band.step_by(997) {
            assert_eq!(
                BlasterScanner::start_for_seed(SRC, tick),
                BlasterScanner::start_for_seed(SRC, tick)
            );
        }
    }

    #[test]
    fn seed_to_start_is_deterministic() {
        let a = BlasterScanner::from_tick_count(SRC, 138_000);
        let b = BlasterScanner::from_tick_count(SRC, 138_000);
        assert_eq!(a.start(), b.start());
    }

    proptest! {
        #[test]
        fn start_octets_in_valid_ranges(tick in any::<u32>(), src in any::<u32>()) {
            let s = BlasterScanner::start_for_seed(Ip::new(src), tick);
            let o = s.octets();
            prop_assert!(o[3] == 0);
            // random branch: a in 1..=254; local branch: a = source's a
            prop_assert!(o[0] == Ip::new(src).octets()[0] || (1..=254).contains(&o[0]));
        }

        #[test]
        fn sequence_is_dense(tick in any::<u32>()) {
            let mut worm = BlasterScanner::from_tick_count(SRC, tick);
            let t0 = worm.next_target();
            for i in 1..50u32 {
                prop_assert_eq!(worm.next_target(), t0.wrapping_add(i));
            }
        }
    }
}
