//! The uniform-random baseline scanner.

use hotspots_ipspace::Ip;
use hotspots_prng::Prng32;

use crate::TargetGenerator;

/// The classical epidemic-model scanner: every probe targets an address
/// drawn uniformly from the whole 32-bit space.
///
/// This is the null model of the paper — the propagation behavior all
/// hotspot metrics measure deviation *from*. Drive it with
/// [`SplitMix`](hotspots_prng::SplitMix) for a statistically clean
/// baseline, or with a malware LCG to study how much the generator alone
/// distorts "uniform" scanning.
///
/// # Examples
///
/// ```
/// use hotspots_prng::SplitMix;
/// use hotspots_targeting::{TargetGenerator, UniformScanner};
///
/// let mut worm = UniformScanner::new(SplitMix::new(0xda7a));
/// let t = worm.next_target();
/// assert_eq!(worm.strategy(), "uniform");
/// # let _ = t;
/// ```
#[derive(Debug, Clone)]
pub struct UniformScanner<P> {
    prng: P,
}

impl<P: Prng32> UniformScanner<P> {
    /// Creates a scanner driven by `prng`.
    pub fn new(prng: P) -> UniformScanner<P> {
        UniformScanner { prng }
    }

    /// Consumes the scanner, returning its PRNG.
    pub fn into_inner(self) -> P {
        self.prng
    }
}

impl<P: Prng32> TargetGenerator for UniformScanner<P> {
    #[inline]
    fn next_target(&mut self) -> Ip {
        Ip::new(self.prng.next_u32())
    }

    fn fill_targets(&mut self, n: usize, out: &mut Vec<Ip>) {
        // Chunked so the PRNG's lane kernel sees whole slices; the word →
        // `Ip` map is the identity on the stored value, so the chunk copy
        // stays branch-free.
        const CHUNK: usize = 256;
        let mut words = [0u32; CHUNK];
        out.reserve(n);
        let mut remaining = n;
        while remaining > 0 {
            let take = remaining.min(CHUNK);
            self.prng.fill_u32(&mut words[..take]);
            out.extend(words[..take].iter().map(|&w| Ip::new(w)));
            remaining -= take;
        }
    }

    fn strategy(&self) -> &'static str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspots_prng::SplitMix;
    use hotspots_stats::uniformity;

    #[test]
    fn deterministic_per_seed() {
        let mut a = UniformScanner::new(SplitMix::new(3));
        let mut b = UniformScanner::new(SplitMix::new(3));
        for _ in 0..32 {
            assert_eq!(a.next_target(), b.next_target());
        }
    }

    #[test]
    fn baseline_really_is_uniform_over_slash8() {
        // The defining property: per-/8 counts pass a χ² uniformity test.
        let mut worm = UniformScanner::new(SplitMix::new(99));
        let mut bins = vec![0u64; 256];
        for _ in 0..256_000 {
            bins[worm.next_target().bucket8().index() as usize] += 1;
        }
        let t = uniformity::chi_square_uniform(&bins).unwrap();
        assert!(
            !t.is_significant(0.001),
            "baseline not uniform: p={}",
            t.p_value
        );
        assert!(uniformity::gini(&bins) < 0.05);
    }

    #[test]
    fn into_inner_returns_prng() {
        let worm = UniformScanner::new(SplitMix::new(5));
        let _prng: SplitMix = worm.into_inner();
    }
}
