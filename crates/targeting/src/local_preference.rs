//! Generic mask/weight local-preference targeting.

use hotspots_ipspace::Ip;
use hotspots_prng::Prng32;

use crate::TargetGenerator;

/// One row of a local-preference table: with relative `weight`, keep the
/// bits of the source address selected by `mask` and randomize the rest.
///
/// `mask = 0` means "completely random"; `mask = 0xffff_0000` means "stay
/// in my /16".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PreferenceEntry {
    /// Bits of the source address to preserve.
    pub mask: u32,
    /// Relative selection weight (must be > 0).
    pub weight: u32,
}

/// A worm whose targeting keeps a weighted mixture of source-address
/// prefixes — the general form of "local preference" the paper describes
/// as a deliberate algorithmic factor (CodeRedII and Nimda both use
/// instances of this scheme).
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::Ip;
/// use hotspots_prng::SplitMix;
/// use hotspots_targeting::{LocalPreference, PreferenceEntry, TargetGenerator};
///
/// // 50% same /16, 50% anywhere
/// let worm = LocalPreference::new(
///     Ip::from_octets(192, 168, 1, 5),
///     vec![
///         PreferenceEntry { mask: 0xffff_0000, weight: 1 },
///         PreferenceEntry { mask: 0, weight: 1 },
///     ],
///     SplitMix::new(11),
/// );
/// # let mut worm = worm;
/// let t = worm.next_target();
/// # let _ = t;
/// ```
#[derive(Debug, Clone)]
pub struct LocalPreference<P> {
    source: Ip,
    entries: Vec<PreferenceEntry>,
    total_weight: u64,
    prng: P,
}

impl<P: Prng32> LocalPreference<P> {
    /// Creates a local-preference scanner for an infected host at
    /// `source`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or any weight is zero.
    pub fn new(source: Ip, entries: Vec<PreferenceEntry>, prng: P) -> LocalPreference<P> {
        assert!(!entries.is_empty(), "preference table must be non-empty");
        assert!(
            entries.iter().all(|e| e.weight > 0),
            "preference weights must be positive"
        );
        let total_weight = entries.iter().map(|e| u64::from(e.weight)).sum();
        LocalPreference {
            source,
            entries,
            total_weight,
            prng,
        }
    }

    /// The infected host's own address.
    pub fn source(&self) -> Ip {
        self.source
    }

    /// The preference table.
    pub fn entries(&self) -> &[PreferenceEntry] {
        &self.entries
    }

    fn pick_mask(&mut self) -> u32 {
        let r = (u64::from(self.prng.next_u32()) * self.total_weight) >> 32;
        let mut acc = 0u64;
        for e in &self.entries {
            acc += u64::from(e.weight);
            if r < acc {
                return e.mask;
            }
        }
        self.entries.last().expect("non-empty table").mask // hotspots-lint: allow(panic-path) reason="routing table is a non-empty static literal"
    }
}

impl<P: Prng32> TargetGenerator for LocalPreference<P> {
    fn next_target(&mut self) -> Ip {
        let mask = self.pick_mask();
        let random = self.prng.next_u32();
        Ip::new((self.source.value() & mask) | (random & !mask))
    }

    fn fill_targets(&mut self, n: usize, out: &mut Vec<Ip>) {
        out.reserve(n);
        for _ in 0..n {
            let mask = self.pick_mask();
            let random = self.prng.next_u32();
            out.push(Ip::new((self.source.value() & mask) | (random & !mask)));
        }
    }

    fn strategy(&self) -> &'static str {
        "local-preference"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspots_prng::SplitMix;

    fn entry(mask: u32, weight: u32) -> PreferenceEntry {
        PreferenceEntry { mask, weight }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_table_panics() {
        let _ = LocalPreference::new(Ip::MIN, vec![], SplitMix::new(0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_panics() {
        let _ = LocalPreference::new(Ip::MIN, vec![entry(0, 0)], SplitMix::new(0));
    }

    #[test]
    fn full_mask_always_targets_source() {
        let src = Ip::from_octets(1, 2, 3, 4);
        let mut worm = LocalPreference::new(src, vec![entry(u32::MAX, 1)], SplitMix::new(9));
        for _ in 0..20 {
            assert_eq!(worm.next_target(), src);
        }
    }

    #[test]
    fn slash16_mask_preserves_top_octets() {
        let src = Ip::from_octets(172, 30, 9, 9);
        let mut worm = LocalPreference::new(src, vec![entry(0xffff_0000, 1)], SplitMix::new(2));
        for _ in 0..200 {
            let t = worm.next_target();
            assert_eq!(&t.octets()[..2], &[172, 30]);
        }
    }

    #[test]
    fn weights_control_mixture() {
        // 3:1 in favor of staying in the /8
        let src = Ip::from_octets(10, 0, 0, 1);
        let mut worm = LocalPreference::new(
            src,
            vec![entry(0xff00_0000, 3), entry(0, 1)],
            SplitMix::new(31),
        );
        let n = 40_000;
        let local = (0..n)
            .filter(|_| worm.next_target().octets()[0] == 10)
            .count();
        let frac = local as f64 / n as f64;
        // 3/4 stay local plus 1/4 * 1/256 random accidents
        assert!((0.72..0.79).contains(&frac), "local fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let src = Ip::from_octets(10, 0, 0, 1);
        let table = vec![entry(0xff00_0000, 1), entry(0, 1)];
        let mut a = LocalPreference::new(src, table.clone(), SplitMix::new(6));
        let mut b = LocalPreference::new(src, table, SplitMix::new(6));
        for _ in 0..64 {
            assert_eq!(a.next_target(), b.next_target());
        }
    }
}
