//! Hit-list scanning: pre-programmed target ranges.

use std::fmt;

use hotspots_ipspace::{Bucket16, Ip, Prefix};
use hotspots_prng::Prng32;

use crate::TargetGenerator;

/// Errors constructing a [`HitList`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HitListError {
    /// A hit-list needs at least one prefix.
    Empty,
    /// Two prefixes overlap, which would double-weight their intersection.
    Overlap {
        /// The first of the overlapping pair.
        a: Prefix,
        /// The second of the overlapping pair.
        b: Prefix,
    },
}

impl fmt::Display for HitListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HitListError::Empty => write!(f, "hit-list must contain at least one prefix"),
            HitListError::Overlap { a, b } => {
                write!(f, "hit-list prefixes overlap: {a} and {b}")
            }
        }
    }
}

impl std::error::Error for HitListError {}

/// An ordered set of disjoint CIDR prefixes with O(log n) uniform
/// sampling over the union of their addresses.
///
/// Bots in the paper's Table 1 carry hit-lists like `192.s.s.s` (one /8)
/// or `advscan … 194.x.x` ranges; the Fig 5 simulations use lists of /16
/// networks chosen to cover the vulnerable population.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::Prefix;
/// use hotspots_targeting::HitList;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let list = HitList::new(vec![
///     "10.1.0.0/16".parse::<Prefix>()?,
///     "192.168.0.0/16".parse::<Prefix>()?,
/// ])?;
/// assert_eq!(list.address_count(), 2 * 65536);
/// assert!(list.contains("10.1.200.7".parse()?));
/// assert!(!list.contains("10.2.0.0".parse()?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HitList {
    prefixes: Vec<Prefix>,
    /// cumulative[i] = number of addresses in prefixes[..i]
    cumulative: Vec<u64>,
    /// (start, inclusive end) spans sorted by start, for O(log n) lookup
    sorted_spans: Vec<(u32, u32)>,
    total: u64,
}

impl HitList {
    /// Builds a hit-list from disjoint prefixes (order is preserved for
    /// display; sampling weights each prefix by its size).
    ///
    /// # Errors
    ///
    /// [`HitListError::Empty`] if `prefixes` is empty;
    /// [`HitListError::Overlap`] if any two prefixes overlap.
    pub fn new(prefixes: Vec<Prefix>) -> Result<HitList, HitListError> {
        if prefixes.is_empty() {
            return Err(HitListError::Empty);
        }
        let mut sorted = prefixes.clone();
        sorted.sort_by_key(|p| p.base());
        for w in sorted.windows(2) {
            if w[0].overlaps(w[1]) {
                return Err(HitListError::Overlap { a: w[0], b: w[1] });
            }
        }
        let mut cumulative = Vec::with_capacity(prefixes.len());
        let mut total = 0u64;
        for p in &prefixes {
            cumulative.push(total);
            total += p.size();
        }
        let sorted_spans = sorted
            .iter()
            .map(|p| (p.base().value(), p.last_ip().value()))
            .collect();
        Ok(HitList {
            prefixes,
            cumulative,
            sorted_spans,
            total,
        })
    }

    /// Builds the greedy /16 hit-list of size `k` covering as many of
    /// `population` as possible — the construction the paper uses for its
    /// Fig 5a/5b simulations ("each /16 was chosen to cover as many
    /// remaining vulnerable hosts as possible").
    ///
    /// If the population occupies fewer than `k` distinct /16s, the list
    /// contains one entry per occupied /16.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `population` is empty.
    pub fn top_k_slash16(population: &[Ip], k: usize) -> HitList {
        assert!(k > 0, "k must be positive");
        assert!(!population.is_empty(), "population must be non-empty");
        let mut per16: std::collections::HashMap<Bucket16, u64> = std::collections::HashMap::new();
        for &ip in population {
            *per16.entry(ip.bucket16()).or_insert(0) += 1;
        }
        let mut buckets: Vec<(Bucket16, u64)> = per16.into_iter().collect();
        // most-covering first; ties broken by address order for determinism
        buckets.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let prefixes: Vec<Prefix> = buckets
            .into_iter()
            .take(k)
            .map(|(b, _)| b.prefix())
            .collect();
        // hotspots-lint: allow(panic-path) reason="distinct /16 buckets are disjoint and non-empty"
        HitList::new(prefixes).expect("distinct /16 buckets are disjoint and non-empty")
    }

    /// The prefixes, in construction order.
    pub fn prefixes(&self) -> &[Prefix] {
        &self.prefixes
    }

    /// Total number of addresses covered.
    pub fn address_count(&self) -> u64 {
        self.total
    }

    /// Returns `true` if `ip` is covered by any prefix (O(log n)).
    pub fn contains(&self, ip: Ip) -> bool {
        let v = ip.value();
        let i = self.sorted_spans.partition_point(|s| s.0 <= v);
        i > 0 && v <= self.sorted_spans[i - 1].1
    }

    /// Fraction of `population` covered by the list.
    pub fn coverage(&self, population: &[Ip]) -> f64 {
        if population.is_empty() {
            return 0.0;
        }
        let hit = population.iter().filter(|&&ip| self.contains(ip)).count();
        hit as f64 / population.len() as f64
    }

    /// The `index`-th address of the union, in prefix order
    /// (`0 <= index < address_count()`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.address_count()`.
    pub fn nth(&self, index: u64) -> Ip {
        assert!(index < self.total, "hit-list index {index} out of range");
        // binary search the cumulative offsets
        let i = match self.cumulative.binary_search(&index) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        self.prefixes[i].nth(index - self.cumulative[i])
    }
}

impl fmt::Display for HitList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hitlist[{} prefixes, {} addrs]",
            self.prefixes.len(),
            self.total
        )
    }
}

/// A worm that scans uniformly *within* a hit-list: every probe targets a
/// uniformly random covered address.
///
/// # Examples
///
/// ```
/// use hotspots_prng::SplitMix;
/// use hotspots_targeting::{HitList, HitListScanner, TargetGenerator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let list = HitList::new(vec!["172.16.0.0/16".parse()?])?;
/// let mut worm = HitListScanner::new(list, SplitMix::new(4));
/// for _ in 0..100 {
///     assert!(worm.next_target().octets()[0] == 172);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HitListScanner<P> {
    list: std::sync::Arc<HitList>,
    prng: P,
}

impl<P: Prng32> HitListScanner<P> {
    /// Creates a scanner over `list` driven by `prng`.
    ///
    /// The list is reference-counted internally: pass an
    /// `Arc<HitList>` (or share one scanner's [`HitListScanner::shared_list`])
    /// when instantiating thousands of scanners over the same large list,
    /// so the prefix table is stored once instead of per instance.
    pub fn new(list: impl Into<std::sync::Arc<HitList>>, prng: P) -> HitListScanner<P> {
        HitListScanner {
            list: list.into(),
            prng,
        }
    }

    /// The hit-list being scanned.
    pub fn list(&self) -> &HitList {
        &self.list
    }

    /// A shareable handle to the hit-list (cheap to clone).
    pub fn shared_list(&self) -> std::sync::Arc<HitList> {
        std::sync::Arc::clone(&self.list)
    }
}

impl<P: Prng32> TargetGenerator for HitListScanner<P> {
    #[inline]
    fn next_target(&mut self) -> Ip {
        let total = self.list.address_count();
        // 64-bit reduction to cover lists up to the full address space
        let r = u64::from(self.prng.next_u32());
        let idx = (r * total) >> 32;
        self.list.nth(idx)
    }

    fn fill_targets(&mut self, n: usize, out: &mut Vec<Ip>) {
        out.reserve(n);
        let total = self.list.address_count();
        for _ in 0..n {
            let r = u64::from(self.prng.next_u32());
            out.push(self.list.nth((r * total) >> 32));
        }
    }

    fn strategy(&self) -> &'static str {
        "hit-list"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspots_prng::SplitMix;
    use proptest::prelude::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn new_rejects_empty_and_overlap() {
        assert_eq!(HitList::new(vec![]), Err(HitListError::Empty));
        let err = HitList::new(vec![p("10.0.0.0/8"), p("10.1.0.0/16")]).unwrap_err();
        assert!(matches!(err, HitListError::Overlap { .. }));
    }

    #[test]
    fn nth_walks_union_in_order() {
        let list = HitList::new(vec![p("10.0.0.0/30"), p("192.168.0.0/31")]).unwrap();
        assert_eq!(list.address_count(), 6);
        let all: Vec<String> = (0..6).map(|i| list.nth(i).to_string()).collect();
        assert_eq!(
            all,
            [
                "10.0.0.0",
                "10.0.0.1",
                "10.0.0.2",
                "10.0.0.3",
                "192.168.0.0",
                "192.168.0.1"
            ]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nth_panics_past_end() {
        let list = HitList::new(vec![p("10.0.0.0/30")]).unwrap();
        let _ = list.nth(4);
    }

    #[test]
    fn scanner_stays_inside_list() {
        let list = HitList::new(vec![p("10.20.0.0/16"), p("10.99.0.0/16")]).unwrap();
        let mut worm = HitListScanner::new(list.clone(), SplitMix::new(77));
        for _ in 0..10_000 {
            let t = worm.next_target();
            assert!(list.contains(t), "{t} outside list");
        }
    }

    #[test]
    fn scanner_weights_prefixes_by_size() {
        // a /16 should receive ~256x the probes of a /24
        let list = HitList::new(vec![p("10.0.0.0/16"), p("20.0.0.0/24")]).unwrap();
        let mut worm = HitListScanner::new(list, SplitMix::new(5));
        let mut big = 0u32;
        let mut small = 0u32;
        for _ in 0..100_000 {
            if worm.next_target().octets()[0] == 10 {
                big += 1;
            } else {
                small += 1;
            }
        }
        let ratio = f64::from(big) / f64::from(small.max(1));
        assert!((100.0..700.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn top_k_slash16_greedy_coverage() {
        // population: 50 hosts in 10.1/16, 30 in 10.2/16, 5 in 10.3/16
        let mut pop = Vec::new();
        for i in 0..50u32 {
            pop.push(Ip::from_octets(10, 1, 0, i as u8));
        }
        for i in 0..30u32 {
            pop.push(Ip::from_octets(10, 2, 0, i as u8));
        }
        for i in 0..5u32 {
            pop.push(Ip::from_octets(10, 3, 0, i as u8));
        }
        let top1 = HitList::top_k_slash16(&pop, 1);
        assert_eq!(top1.prefixes()[0].to_string(), "10.1.0.0/16");
        assert!((top1.coverage(&pop) - 50.0 / 85.0).abs() < 1e-9);
        let top2 = HitList::top_k_slash16(&pop, 2);
        assert!((top2.coverage(&pop) - 80.0 / 85.0).abs() < 1e-9);
        let top99 = HitList::top_k_slash16(&pop, 99);
        assert_eq!(top99.prefixes().len(), 3, "only occupied /16s included");
        assert_eq!(top99.coverage(&pop), 1.0);
    }

    #[test]
    fn coverage_of_empty_population_is_zero() {
        let list = HitList::new(vec![p("10.0.0.0/16")]).unwrap();
        assert_eq!(list.coverage(&[]), 0.0);
    }

    proptest! {
        #[test]
        fn contains_agrees_with_linear_scan(v in proptest::prelude::any::<u32>()) {
            let list = HitList::new(vec![
                p("10.0.0.0/24"), p("10.0.2.0/24"), p("200.1.0.0/16"), p("9.9.9.9/32"),
            ]).unwrap();
            let ip = Ip::new(v);
            let linear = list.prefixes().iter().any(|q| q.contains(ip));
            proptest::prop_assert_eq!(list.contains(ip), linear);
        }

        #[test]
        fn nth_is_a_bijection_into_union(indices in proptest::collection::vec(0u64..512, 1..64)) {
            let list = HitList::new(vec![p("10.0.0.0/24"), p("10.0.2.0/24")]).unwrap();
            for &i in &indices {
                let ip = list.nth(i % list.address_count());
                prop_assert!(list.contains(ip));
            }
        }

        #[test]
        fn scanner_distribution_covers_all_prefixes(seed in any::<u64>()) {
            let list = HitList::new(vec![p("10.0.0.0/28"), p("11.0.0.0/28")]).unwrap();
            let mut worm = HitListScanner::new(list, SplitMix::new(seed));
            let mut seen10 = false;
            let mut seen11 = false;
            for _ in 0..256 {
                match worm.next_target().octets()[0] {
                    10 => seen10 = true,
                    11 => seen11 = true,
                    other => prop_assert!(false, "octet {other} escaped the list"),
                }
            }
            prop_assert!(seen10 && seen11);
        }
    }
}
