//! The Witty worm as a [`TargetGenerator`].

use hotspots_ipspace::Ip;
use hotspots_prng::WittyPrng;

use crate::TargetGenerator;

/// A Witty instance: the 16-bit-output LCG walk
/// ([`WittyPrng`]).
///
/// Witty's hotspot structure differs from Slammer's: instead of trapping
/// each host on a private cycle, it makes *every* host walk the same
/// global sequence — and leaves a fixed ~10% of the address space
/// unreachable by any instance, ever.
///
/// # Examples
///
/// ```
/// use hotspots_targeting::{TargetGenerator, WittyScanner};
///
/// let mut worm = WittyScanner::new(0x1234);
/// let t = worm.next_target();
/// assert!(hotspots_prng::WittyPrng::can_generate(t));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WittyScanner {
    prng: WittyPrng,
}

impl WittyScanner {
    /// Creates an instance with the given seed.
    pub const fn new(seed: u32) -> WittyScanner {
        WittyScanner {
            prng: WittyPrng::new(seed),
        }
    }

    /// The raw LCG state.
    pub const fn state(&self) -> u32 {
        self.prng.state()
    }
}

impl TargetGenerator for WittyScanner {
    #[inline]
    fn next_target(&mut self) -> Ip {
        self.prng.next_target()
    }

    fn strategy(&self) -> &'static str {
        "witty"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets;
    use hotspots_prng::WittyPrng;

    #[test]
    fn all_targets_are_reachable_set_members() {
        let mut worm = WittyScanner::new(42);
        for t in targets(&mut worm, 500) {
            assert!(WittyPrng::can_generate(t));
        }
    }

    #[test]
    fn unreachable_addresses_are_never_emitted() {
        // find an unreachable address, then confirm a long scan misses it
        let hole = (0u32..)
            .map(|i| Ip::new(i.wrapping_mul(0x9e37_79b9)))
            .find(|&ip| !WittyPrng::can_generate(ip))
            .expect("~10% of the space is unreachable");
        let mut worm = WittyScanner::new(7);
        assert!(targets(&mut worm, 200_000).iter().all(|&t| t != hole));
    }
}
