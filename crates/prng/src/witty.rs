//! The Witty worm's target generator (Kumar, Paxson & Weaver's analysis,
//! cited by the paper as a further PRNG-structure case).
//!
//! Witty reused the msvcrt LCG but took only the **top 16 bits** of each
//! new state as its `rand()` output, building a target address from two
//! consecutive outputs. Because the underlying LCG is a single full
//! 2^32-period orbit, every Witty instance walks the *same* global output
//! sequence (merely phase-shifted by its seed), the target sequence has
//! period 2^31 (two states per target), and the reachable target set is a
//! fixed proper subset of the address space — addresses outside it can
//! never be probed by any instance. All three properties are tested.

use hotspots_ipspace::Ip;

use crate::lcg::{Lcg32, Prng32};
use crate::msvcrt::{MSVCRT_INC, MSVCRT_MUL};

/// A Witty instance's generator:
/// `state ← 214013·state + 2531011 (mod 2^32)`, `rand() = state >> 16`,
/// `target = rand()·2^16 | rand()`.
///
/// # Examples
///
/// ```
/// use hotspots_prng::WittyPrng;
///
/// let mut a = WittyPrng::new(0);
/// let mut b = WittyPrng::new(0);
/// assert_eq!(a.next_target(), b.next_target());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WittyPrng {
    lcg: Lcg32,
}

impl WittyPrng {
    /// Creates an instance seeded with `seed` (in the wild: a
    /// time-derived value).
    pub const fn new(seed: u32) -> WittyPrng {
        WittyPrng {
            lcg: Lcg32::new(MSVCRT_MUL, MSVCRT_INC, seed),
        }
    }

    /// The raw LCG state.
    pub const fn state(&self) -> u32 {
        self.lcg.state()
    }

    /// Witty's 16-bit `rand()`: the high half of the next state.
    #[inline]
    pub fn rand16(&mut self) -> u16 {
        (self.lcg.step() >> 16) as u16
    }

    /// Generates the next target address from two `rand()` calls.
    #[inline]
    pub fn next_target(&mut self) -> Ip {
        let hi = u32::from(self.rand16());
        let lo = u32::from(self.rand16());
        Ip::new((hi << 16) | lo)
    }

    /// Whether *any* Witty instance can ever generate `target`: the
    /// address is reachable iff some state `s` has `s >> 16 == hi` and
    /// `step(s) >> 16 == lo`. Checked exactly by scanning the 2^16
    /// states sharing the high half (fast: one multiply per candidate).
    pub fn can_generate(target: Ip) -> bool {
        let v = target.value();
        let hi = v >> 16;
        let lo = v & 0xffff;
        (0u32..=0xffff).any(|low_bits| {
            let s = (hi << 16) | low_bits;
            (s.wrapping_mul(MSVCRT_MUL).wrapping_add(MSVCRT_INC)) >> 16 == lo
        })
    }
}

impl Prng32 for WittyPrng {
    fn next_u32(&mut self) -> u32 {
        self.next_target().value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::AffineMap;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<Ip> = {
            let mut w = WittyPrng::new(7);
            (0..32).map(|_| w.next_target()).collect()
        };
        let b: Vec<Ip> = {
            let mut w = WittyPrng::new(7);
            (0..32).map(|_| w.next_target()).collect()
        };
        let c: Vec<Ip> = {
            let mut w = WittyPrng::new(8);
            (0..32).map(|_| w.next_target()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn all_instances_share_one_orbit() {
        // advance instance A by k steps and it becomes instance B: the
        // LCG is a single 2^32 cycle, so every seed is a phase shift.
        let map = AffineMap::new(MSVCRT_MUL, MSVCRT_INC, 32).unwrap();
        let seed_a = 123u32;
        let shifted_seed = map.jump(seed_a, 2_468); // even shift: stays target-aligned
        let mut a = WittyPrng::new(seed_a);
        for _ in 0..(2_468 / 2) {
            a.next_target();
        }
        let mut b = WittyPrng::new(shifted_seed);
        for _ in 0..16 {
            assert_eq!(a.next_target(), b.next_target());
        }
    }

    #[test]
    fn target_sequence_period_is_2_to_31() {
        // two states per target over a 2^32-period orbit: jumping the
        // state 2^32 steps (= 2^31 targets) returns it exactly.
        let map = AffineMap::new(MSVCRT_MUL, MSVCRT_INC, 32).unwrap();
        for seed in [0u32, 1, 0xdead_beef] {
            assert_eq!(map.jump(seed, 1u64 << 32), seed);
        }
        // and the msvcrt LCG really is full-period (Hull–Dobell): no
        // shorter power-of-two period
        assert_ne!(map.jump(5, 1u64 << 31), 5);
    }

    #[test]
    fn some_addresses_are_unreachable() {
        // Kumar et al.'s headline: Witty can never probe certain
        // addresses. Verify both directions of `can_generate` and count
        // the deficiency on a sample.
        let mut w = WittyPrng::new(99);
        for _ in 0..100 {
            let t = w.next_target();
            assert!(
                WittyPrng::can_generate(t),
                "{t} was generated but deemed unreachable"
            );
        }
        let mut unreachable = 0u32;
        let sample = 2_000u32;
        for i in 0..sample {
            let probe = Ip::new(i.wrapping_mul(0x9e37_79b9));
            if !WittyPrng::can_generate(probe) {
                unreachable += 1;
            }
        }
        let frac = f64::from(unreachable) / f64::from(sample);
        // Kumar et al. found roughly 10% of the address space is never
        // probed by any Witty instance; the exact reachability check
        // lands right there.
        assert!(
            (0.05..0.2).contains(&frac),
            "expected ~10% unreachable, got {frac}"
        );
    }

    #[test]
    fn rand16_is_high_half_of_state() {
        let mut w = WittyPrng::new(3);
        let expected = (3u32.wrapping_mul(MSVCRT_MUL).wrapping_add(MSVCRT_INC)) >> 16;
        assert_eq!(u32::from(w.rand16()), expected);
    }
}
