//! Exact cycle analysis of affine maps `x ← a·x + b (mod 2^n)`.
//!
//! When the multiplier `a` is odd, an LCG is a *permutation* of `Z/2^n`,
//! so the state space decomposes into disjoint cycles and every seeded
//! instance walks exactly one of them forever. Slammer's flawed increments
//! make this decomposition extremely uneven — a handful of giant cycles
//! plus many tiny ones — which is the root cause of both per-host Slammer
//! hotspots (an instance stuck on a short cycle) and aggregate hotspots
//! (address blocks traversed by fewer/shorter cycles see fewer unique
//! sources).
//!
//! Brute-force enumeration of the 2^32 state space is possible but slow;
//! this module instead computes the structure *algebraically*:
//!
//! 1. If `gcd(a−1, 2^n) | b` the map has a fixed point `c`; substituting
//!    `y = x − c` conjugates the map to pure multiplication `y ← a·y`.
//! 2. Writing `y = 2^v·u` with `u` odd, multiplication by `a` preserves the
//!    2-adic valuation `v`, so the cycle containing `y` has length
//!    `ord(a mod 2^(n−v))` — the multiplicative order, computed in
//!    O(n) squarings because the unit group is a 2-group.
//! 3. Orbits within one valuation band are classified via the
//!    decomposition `u = (−1)^s · 5^e` of units modulo `2^j`
//!    ([`decompose_unit`]), giving a canonical [`CycleId`] without any
//!    iteration.
//!
//! For Slammer's parameters (`a = 214013 ≡ 5 (mod 8)`, all three flawed
//! `b`s divisible by 4) this yields exactly **64 cycles**: two per
//! valuation 0..=29 with lengths `2^30 … 2`, plus four fixed points —
//! matching the count reported in the paper.
//!
//! # Examples
//!
//! ```
//! use hotspots_prng::cycles::AffineMap;
//! use hotspots_prng::SqlsortDll;
//!
//! let map = AffineMap::slammer(SqlsortDll::Gold);
//! let bands = map.cycle_structure().unwrap();
//! let total_cycles: u64 = bands.iter().map(|b| b.num_cycles).sum();
//! assert_eq!(total_cycles, 64);
//! ```

use std::collections::BTreeMap;
use std::fmt;

use hotspots_ipspace::{Ip, Prefix};

use crate::slammer::{SqlsortDll, SLAMMER_MULTIPLIER};

/// Errors from affine-map construction and analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleError {
    /// The multiplier was even, so the map is not a permutation and cycle
    /// analysis does not apply.
    EvenMultiplier {
        /// The offending multiplier.
        a: u32,
    },
    /// Modulus bits outside `1..=32`.
    BitsOutOfRange {
        /// The offending bit count.
        bits: u8,
    },
    /// The map has no fixed point (`gcd(a−1, 2^n) ∤ b`), so the conjugation
    /// trick behind the algebraic analysis is unavailable. Iterative
    /// methods ([`AffineMap::iterated_cycle_length`]) still work.
    NoFixedPoint,
    /// Canonical cycle identification currently requires `a ≡ 1 (mod 4)`
    /// (true for every generator in this workspace; see module docs).
    UnsupportedMultiplierClass {
        /// The offending multiplier.
        a: u32,
    },
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CycleError::EvenMultiplier { a } => {
                write!(f, "multiplier {a:#x} is even: the map is not a permutation")
            }
            CycleError::BitsOutOfRange { bits } => {
                write!(f, "modulus bits {bits} out of range (expected 1..=32)")
            }
            CycleError::NoFixedPoint => {
                write!(f, "map has no fixed point; algebraic analysis unavailable")
            }
            CycleError::UnsupportedMultiplierClass { a } => {
                write!(f, "cycle identification requires a ≡ 1 (mod 4); got {a:#x}")
            }
        }
    }
}

impl std::error::Error for CycleError {}

/// A canonical identifier for one cycle of an affine permutation.
///
/// Two states map to the same `CycleId` iff they lie on the same cycle.
/// The identifier is `(valuation, sign_class)` where `valuation` is the
/// 2-adic valuation of `state − fixed_point` (with `valuation == n`
/// reserved for the fixed point itself) and `sign_class` distinguishes the
/// two orbits (`u ≡ 1` vs `u ≡ 3 (mod 4)`) within a valuation band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CycleId {
    /// 2-adic valuation band (0..=n; `n` means the fixed point `y = 0`).
    pub valuation: u8,
    /// Orbit class within the band: `false` for `u ≡ 1 (mod 4)`, `true`
    /// for `u ≡ 3 (mod 4)`. Always `false` for bands where only one orbit
    /// exists (valuation ≥ n−1).
    pub sign_class: bool,
}

impl fmt::Display for CycleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle(v={}, {})",
            self.valuation,
            if self.sign_class { "u≡3" } else { "u≡1" }
        )
    }
}

/// One band of the cycle decomposition: all cycles whose elements share a
/// 2-adic valuation, which forces them to share a length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CycleBand {
    /// The shared 2-adic valuation of `state − fixed_point`.
    pub valuation: u8,
    /// Length of every cycle in the band.
    pub cycle_length: u64,
    /// Number of distinct cycles in the band.
    pub num_cycles: u64,
}

/// An affine permutation `x ← a·x + b (mod 2^bits)` with odd `a`.
///
/// # Examples
///
/// ```
/// use hotspots_prng::cycles::AffineMap;
///
/// // A toy 8-bit map: exhaustively verifiable.
/// let map = AffineMap::new(5, 4, 8).unwrap();
/// assert_eq!(map.apply(3), (5 * 3 + 4) % 256);
/// let algebraic = map.cycle_length(17).unwrap();
/// let iterated = map.iterated_cycle_length(17, 1 << 16).unwrap();
/// assert_eq!(algebraic, iterated);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AffineMap {
    a: u32,
    b: u32,
    bits: u8,
}

impl AffineMap {
    /// Creates the map `x ← a·x + b (mod 2^bits)`.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError::EvenMultiplier`] if `a` is even (not a
    /// permutation) and [`CycleError::BitsOutOfRange`] unless
    /// `1 <= bits <= 32`.
    pub fn new(a: u32, b: u32, bits: u8) -> Result<AffineMap, CycleError> {
        if !(1..=32).contains(&bits) {
            return Err(CycleError::BitsOutOfRange { bits });
        }
        let a = a & mask(bits);
        if a.is_multiple_of(2) {
            return Err(CycleError::EvenMultiplier { a });
        }
        Ok(AffineMap {
            a,
            b: b & mask(bits),
            bits,
        })
    }

    /// The full-width (2^32) map for a Slammer instance with the given DLL
    /// version.
    pub fn slammer(dll: SqlsortDll) -> AffineMap {
        AffineMap::new(SLAMMER_MULTIPLIER, dll.increment(), 32)
            .expect("slammer parameters are a valid permutation") // hotspots-lint: allow(panic-path) reason="slammer parameters are a valid permutation"
    }

    /// The multiplier `a`.
    pub const fn a(&self) -> u32 {
        self.a
    }

    /// The increment `b`.
    pub const fn b(&self) -> u32 {
        self.b
    }

    /// The modulus width in bits.
    pub const fn bits(&self) -> u8 {
        self.bits
    }

    /// Applies the map once.
    #[inline]
    pub fn apply(&self, x: u32) -> u32 {
        x.wrapping_mul(self.a).wrapping_add(self.b) & mask(self.bits)
    }

    /// Applies the map `n` times in O(log n) via recursive doubling on
    /// `(a^k, Σ a^i)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_prng::cycles::AffineMap;
    /// let m = AffineMap::new(214013, 0x88215000, 32).unwrap();
    /// let mut x = 12345;
    /// for _ in 0..1000 { x = m.apply(x); }
    /// assert_eq!(m.jump(12345, 1000), x);
    /// ```
    pub fn jump(&self, x: u32, n: u64) -> u32 {
        // (a_pow, s) represent the n-step map y ← a_pow·y + s·b
        let mut a_pow: u32 = 1;
        let mut s: u32 = 0;
        let mut base_a = self.a;
        let mut base_s: u32 = 1; // Σ over one step of base map
        let mut k = n;
        while k > 0 {
            if k & 1 == 1 {
                s = s.wrapping_mul(base_a).wrapping_add(base_s);
                a_pow = a_pow.wrapping_mul(base_a);
            }
            base_s = base_s.wrapping_mul(base_a).wrapping_add(base_s);
            base_a = base_a.wrapping_mul(base_a);
            k >>= 1;
        }
        (x.wrapping_mul(a_pow).wrapping_add(s.wrapping_mul(self.b))) & mask(self.bits)
    }

    /// Returns a fixed point `c` with `a·c + b ≡ c`, if one exists.
    ///
    /// A fixed point exists iff `gcd(a−1, 2^bits)` divides `b`. All of
    /// Slammer's flawed increments satisfy this (they are ≡ 0 mod 4 while
    /// `gcd(214013−1, 2^32) = 4`).
    pub fn fixed_point(&self) -> Option<u32> {
        let m = self.bits as u32;
        let a1 = u64::from(self.a.wrapping_sub(1) & mask(self.bits));
        if a1 == 0 {
            // identity multiplier: fixed points exist iff b == 0
            return if self.b == 0 { Some(0) } else { None };
        }
        let t = a1.trailing_zeros().min(m); // gcd(a-1, 2^m) = 2^t
        if t >= m {
            return if self.b & mask(self.bits) == 0 {
                Some(0)
            } else {
                None
            };
        }
        if u64::from(self.b) % (1u64 << t) != 0 {
            return None;
        }
        // Solve (a-1)/2^t · c ≡ -b/2^t (mod 2^(m-t)); odd coefficient.
        let coeff = (a1 >> t) as u32;
        let rhs = (self.b >> t).wrapping_neg();
        let sub_bits = (m - t) as u8;
        let inv = inverse_mod_pow2(coeff, sub_bits);
        let c0 = rhs.wrapping_mul(inv) & mask(sub_bits);
        // Lift: any solution mod 2^(m-t) works as a representative; verify.
        for j in 0..(1u32 << t.min(8)) {
            let cand = (c0.wrapping_add(j << (m - t))) & mask(self.bits);
            if self.apply(cand) == cand {
                return Some(cand);
            }
        }
        None
    }

    /// Cycle length of the cycle containing `x`, computed algebraically.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError::NoFixedPoint`] if the map has no fixed point;
    /// use [`AffineMap::iterated_cycle_length`] in that case.
    pub fn cycle_length(&self, x: u32) -> Result<u64, CycleError> {
        let c = self.fixed_point().ok_or(CycleError::NoFixedPoint)?;
        let y = x.wrapping_sub(c) & mask(self.bits);
        if y == 0 {
            return Ok(1);
        }
        let v = y.trailing_zeros() as u8;
        let j = self.bits - v;
        Ok(order_mod_pow2(self.a, j))
    }

    /// Canonical identifier of the cycle containing `x`.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError::NoFixedPoint`] for maps without fixed points
    /// and [`CycleError::UnsupportedMultiplierClass`] unless
    /// `a ≡ 1 (mod 4)` (all workspace generators satisfy this).
    pub fn cycle_id(&self, x: u32) -> Result<CycleId, CycleError> {
        if self.a % 4 != 1 {
            return Err(CycleError::UnsupportedMultiplierClass { a: self.a });
        }
        let c = self.fixed_point().ok_or(CycleError::NoFixedPoint)?;
        let y = x.wrapping_sub(c) & mask(self.bits);
        if y == 0 {
            return Ok(CycleId {
                valuation: self.bits,
                sign_class: false,
            });
        }
        let v = y.trailing_zeros() as u8;
        let j = self.bits - v;
        let u = (y >> v) & mask(j);
        // For a ≡ 1 (mod 4), ⟨a⟩ ⊆ {u ≡ 1 (mod 4)}, and when a has maximal
        // order (a ≡ 5 mod 8) the two orbits in band v are exactly the two
        // classes u mod 4 ∈ {1, 3}. For a ≡ 1 (mod 8) orbits are finer;
        // we still expose the mod-4 class, which is a sound cycle id for
        // the maximal-order generators this workspace uses, and verified
        // against brute force in tests.
        let sign_class = j >= 2 && (u & 3) == 3;
        Ok(CycleId {
            valuation: v,
            sign_class,
        })
    }

    /// Full cycle decomposition as per-valuation bands.
    ///
    /// The invariant `Σ num_cycles · cycle_length == 2^bits` always holds.
    ///
    /// # Errors
    ///
    /// Returns [`CycleError::NoFixedPoint`] if the map has no fixed point.
    pub fn cycle_structure(&self) -> Result<Vec<CycleBand>, CycleError> {
        self.fixed_point().ok_or(CycleError::NoFixedPoint)?;
        let n = self.bits;
        let mut bands = Vec::with_capacity(n as usize + 1);
        for v in 0..n {
            let j = n - v; // band elements are 2^v · u with u odd mod 2^j
            let elements = 1u64 << (j - 1);
            let len = order_mod_pow2(self.a, j);
            bands.push(CycleBand {
                valuation: v,
                cycle_length: len,
                num_cycles: elements / len,
            });
        }
        // the fixed point y = 0
        bands.push(CycleBand {
            valuation: n,
            cycle_length: 1,
            num_cycles: 1,
        });
        Ok(bands)
    }

    /// Cycle length measured by brute-force iteration (ground truth for
    /// tests and for maps without fixed points). Returns `None` if the
    /// cycle is longer than `cap` steps.
    pub fn iterated_cycle_length(&self, x: u32, cap: u64) -> Option<u64> {
        let start = x & mask(self.bits);
        let mut cur = self.apply(start);
        let mut steps: u64 = 1;
        while cur != start {
            if steps >= cap {
                return None;
            }
            cur = self.apply(cur);
            steps += 1;
        }
        Some(steps)
    }

    /// The set of distinct cycles that pass through any of the given
    /// states, with each cycle's length.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`AffineMap::cycle_id`].
    pub fn cycles_through_states<I>(&self, states: I) -> Result<BTreeMap<CycleId, u64>, CycleError>
    where
        I: IntoIterator<Item = u32>,
    {
        let mut out = BTreeMap::new();
        for s in states {
            let id = self.cycle_id(s)?;
            if let std::collections::btree_map::Entry::Vacant(e) = out.entry(id) {
                e.insert(self.cycle_length(s)?);
            }
        }
        Ok(out)
    }

    /// The set of distinct cycles whose *target addresses* fall inside an
    /// IP prefix, for full-width (32-bit) generators that emit addresses
    /// little-endian like Slammer does ([`Ip::from_le_state`]).
    ///
    /// This is the quantity the paper computes for its D/H/I comparison:
    /// blocks traversed by fewer/shorter cycles observe fewer unique
    /// Slammer sources.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`AffineMap::cycle_id`]; also returns
    /// [`CycleError::BitsOutOfRange`] if the map is not 32-bit wide.
    pub fn cycles_through_block(
        &self,
        block: Prefix,
    ) -> Result<BTreeMap<CycleId, u64>, CycleError> {
        if self.bits != 32 {
            return Err(CycleError::BitsOutOfRange { bits: self.bits });
        }
        self.cycles_through_states(block.iter().map(Ip::to_le_state))
    }

    /// The probability that a uniformly random seed lands on a cycle that
    /// eventually visits one of `cycles`' members — i.e. the fraction of
    /// state space covered by the given cycles.
    pub fn traversal_fraction(&self, cycles: &BTreeMap<CycleId, u64>) -> f64 {
        let total: u64 = cycles.values().sum();
        total as f64 / (1u64 << self.bits) as f64
    }
}

#[inline]
fn mask(bits: u8) -> u32 {
    if bits >= 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    }
}

/// Multiplicative order of odd `a` modulo `2^j`, computed by repeated
/// squaring (the unit group is a 2-group, so the order is a power of two).
///
/// # Panics
///
/// Panics if `a` is even or `j == 0` or `j > 32`.
///
/// # Examples
///
/// ```
/// use hotspots_prng::cycles::order_mod_pow2;
///
/// // 5 generates the maximal cyclic subgroup: order 2^(j-2).
/// assert_eq!(order_mod_pow2(5, 10), 1 << 8);
/// // 214013 ≡ 5 (mod 8) has maximal order too.
/// assert_eq!(order_mod_pow2(214013, 32), 1 << 30);
/// ```
pub fn order_mod_pow2(a: u32, j: u8) -> u64 {
    assert!(a % 2 == 1, "order is defined for odd residues only");
    assert!((1..=32).contains(&j), "modulus bits {j} out of range");
    let m = mask(j);
    let mut t = a & m;
    let mut order: u64 = 1;
    while t != 1 {
        t = t.wrapping_mul(t) & m;
        order *= 2;
        debug_assert!(order <= 1 << 31, "order overflow: group is a 2-group");
    }
    order
}

/// Inverse of odd `x` modulo `2^bits` by Newton–Hensel iteration.
///
/// # Panics
///
/// Panics if `x` is even.
pub fn inverse_mod_pow2(x: u32, bits: u8) -> u32 {
    assert!(x % 2 == 1, "only odd residues are invertible mod 2^n");
    let mut inv: u32 = 1;
    // 6 iterations give > 32 bits of precision.
    for _ in 0..6 {
        inv = inv.wrapping_mul(2u32.wrapping_sub(x.wrapping_mul(inv)));
    }
    inv & mask(bits)
}

/// Decomposes an odd unit `u` modulo `2^j` as `(−1)^s · 5^e`
/// (`s ∈ {0,1}`, `e ∈ [0, 2^(j−2))` for `j ≥ 3`).
///
/// This is the standard structure theorem for `(Z/2^j)^*` and underlies
/// canonical cycle identification.
///
/// # Panics
///
/// Panics if `u` is even (not a unit) or `j` is out of `1..=32`.
///
/// # Examples
///
/// ```
/// use hotspots_prng::cycles::decompose_unit;
///
/// let (s, e) = decompose_unit(25, 8); // 25 = 5^2
/// assert_eq!((s, e), (false, 2));
/// let (s, _) = decompose_unit(255, 8); // 255 ≡ −1
/// assert!(s);
/// ```
pub fn decompose_unit(u: u32, j: u8) -> (bool, u32) {
    assert!(u % 2 == 1, "unit decomposition needs an odd residue");
    assert!((1..=32).contains(&j), "modulus bits {j} out of range");
    let m = mask(j);
    let u = u & m;
    if j == 1 {
        return (false, 0);
    }
    if j == 2 {
        return (u == 3, 0);
    }
    let s = u & 3 == 3;
    let w = if s { u.wrapping_neg() & m } else { u };
    // Find e with 5^e ≡ w (mod 2^j) by bit-lifting: e is determined
    // modulo 2^(j-2).
    let mut e: u32 = 0;
    let mut pow5: u32 = 1; // 5^e mod 2^j
    let mut step_pow: u32 = 5; // 5^(2^k) mod 2^j
    for k in 0..(j - 2) as u32 {
        let bit_mod = mask((k + 3).min(u32::from(j)) as u8);
        if pow5 & bit_mod != w & bit_mod {
            e |= 1 << k;
            pow5 = pow5.wrapping_mul(step_pow) & m;
        }
        step_pow = step_pow.wrapping_mul(step_pow) & m;
    }
    debug_assert_eq!(pow5, w, "discrete log failed");
    (s, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn order_of_small_generators() {
        assert_eq!(order_mod_pow2(1, 8), 1);
        assert_eq!(order_mod_pow2(3, 3), 2); // 3^2 = 9 ≡ 1 mod 8
        assert_eq!(order_mod_pow2(5, 3), 2);
        assert_eq!(order_mod_pow2(5, 8), 64);
        assert_eq!(order_mod_pow2(7, 3), 2); // 7 ≡ −1 (mod 8)
        assert_eq!(order_mod_pow2(7, 8), 32);
    }

    #[test]
    fn order_definition_brute_force() {
        // cross-check order_mod_pow2 against direct search for tiny moduli
        for j in 1..=10u8 {
            let m = mask(j);
            for a in (1u32..64).step_by(2) {
                let fast = order_mod_pow2(a, j);
                let mut t = a & m;
                let mut n = 1u64;
                while t != 1 {
                    t = t.wrapping_mul(a) & m;
                    n += 1;
                }
                assert_eq!(fast, n, "a={a} j={j}");
            }
        }
    }

    #[test]
    fn inverse_is_inverse() {
        for bits in [4u8, 8, 16, 32] {
            for x in [1u32, 3, 5, 214013, 0xdeadbeef | 1] {
                let inv = inverse_mod_pow2(x, bits);
                assert_eq!(x.wrapping_mul(inv) & mask(bits), 1, "x={x} bits={bits}");
            }
        }
    }

    #[test]
    fn decompose_unit_round_trip_8bit() {
        let j = 8u8;
        let m = mask(j);
        for u in (1u32..256).step_by(2) {
            let (s, e) = decompose_unit(u, j);
            // recompute (−1)^s 5^e
            let mut val: u32 = 1;
            for _ in 0..e {
                val = val.wrapping_mul(5) & m;
            }
            if s {
                val = val.wrapping_neg() & m;
            }
            assert_eq!(val, u, "u={u}");
        }
    }

    #[test]
    fn new_rejects_even_multiplier_and_bad_bits() {
        assert!(matches!(
            AffineMap::new(2, 0, 8),
            Err(CycleError::EvenMultiplier { .. })
        ));
        assert!(matches!(
            AffineMap::new(5, 0, 0),
            Err(CycleError::BitsOutOfRange { .. })
        ));
        assert!(matches!(
            AffineMap::new(5, 0, 33),
            Err(CycleError::BitsOutOfRange { .. })
        ));
    }

    #[test]
    fn fixed_point_exists_for_slammer_variants() {
        for dll in SqlsortDll::ALL {
            let map = AffineMap::slammer(dll);
            let c = map.fixed_point().expect("4 | b guarantees a fixed point");
            assert_eq!(map.apply(c), c, "{dll}");
        }
    }

    #[test]
    fn fixed_point_absent_when_gcd_does_not_divide_b() {
        // a-1 = 4 → gcd 4; b = 2 not divisible by 4 → no fixed point.
        let map = AffineMap::new(5, 2, 8).unwrap();
        assert_eq!(map.fixed_point(), None);
        assert!(matches!(map.cycle_length(0), Err(CycleError::NoFixedPoint)));
    }

    #[test]
    fn slammer_structure_has_64_cycles() {
        for dll in SqlsortDll::ALL {
            let map = AffineMap::slammer(dll);
            let bands = map.cycle_structure().unwrap();
            let cycles: u64 = bands.iter().map(|b| b.num_cycles).sum();
            assert_eq!(cycles, 64, "{dll}");
            let total: u128 = bands
                .iter()
                .map(|b| u128::from(b.num_cycles) * u128::from(b.cycle_length))
                .sum();
            assert_eq!(total, 1u128 << 32, "{dll} does not cover the space");
            // longest band: 2 cycles of 2^30
            assert_eq!(bands[0].cycle_length, 1 << 30);
            assert_eq!(bands[0].num_cycles, 2);
        }
    }

    #[test]
    fn slammer_has_exactly_four_period_one_cycles() {
        // The algebra gives 4 fixed points per flawed increment. (The
        // paper's figure 3c reads "seven" off a log plot; EXPERIMENTS.md
        // records the discrepancy.)
        for dll in SqlsortDll::ALL {
            let map = AffineMap::slammer(dll);
            let ones: u64 = map
                .cycle_structure()
                .unwrap()
                .iter()
                .filter(|b| b.cycle_length == 1)
                .map(|b| b.num_cycles)
                .sum();
            assert_eq!(ones, 4, "{dll}");
        }
    }

    #[test]
    fn jump_matches_iteration() {
        let map = AffineMap::slammer(SqlsortDll::Sp2);
        let mut x = 0xfeed_f00d;
        for _ in 0..123 {
            x = map.apply(x);
        }
        assert_eq!(map.jump(0xfeed_f00d, 123), x);
        assert_eq!(map.jump(x, 0), x);
    }

    #[test]
    fn cycle_length_agrees_with_iteration_16bit() {
        // Exhaustive ground truth on a 16-bit Slammer-alike.
        let map = AffineMap::new(214013, 0x5000, 16).unwrap();
        for x in (0..0x1_0000u32).step_by(97) {
            let alg = map.cycle_length(x).unwrap();
            let it = map.iterated_cycle_length(x, 1 << 17).unwrap();
            assert_eq!(alg, it, "x={x:#x}");
        }
    }

    #[test]
    fn cycle_id_constant_along_cycle_and_distinct_across() {
        let map = AffineMap::new(214013, 0x5000, 12).unwrap();
        // Walk one full cycle: id must not change.
        let start = 5u32;
        let id = map.cycle_id(start).unwrap();
        let len = map.cycle_length(start).unwrap();
        let mut x = start;
        for _ in 0..len {
            x = map.apply(x);
            assert_eq!(map.cycle_id(x).unwrap(), id);
        }
        assert_eq!(x, start);
    }

    #[test]
    fn cycle_ids_partition_exactly_12bit() {
        // For a maximal-order multiplier, the (valuation, mod-4 class)
        // labels must partition the space into exactly the algebraic
        // number of cycles, with matching sizes.
        let map = AffineMap::new(214013, 0x50, 12).unwrap();
        let mut by_id: BTreeMap<CycleId, u64> = BTreeMap::new();
        for x in 0..(1u32 << 12) {
            *by_id.entry(map.cycle_id(x).unwrap()).or_insert(0) += 1;
        }
        let bands = map.cycle_structure().unwrap();
        let expected_cycles: u64 = bands.iter().map(|b| b.num_cycles).sum();
        assert_eq!(by_id.len() as u64, expected_cycles);
        // each id's population equals its cycle length (ids = single cycles)
        for (id, count) in &by_id {
            let some_member = (0..(1u32 << 12))
                .find(|&x| map.cycle_id(x).unwrap() == *id)
                .unwrap();
            assert_eq!(*count, map.cycle_length(some_member).unwrap(), "{id}");
        }
    }

    #[test]
    fn cycles_through_block_requires_32_bits() {
        let map = AffineMap::new(5, 4, 8).unwrap();
        let block: Prefix = "10.0.0.0/24".parse().unwrap();
        assert!(matches!(
            map.cycles_through_block(block),
            Err(CycleError::BitsOutOfRange { .. })
        ));
    }

    #[test]
    fn traversal_fraction_of_everything_is_one() {
        let map = AffineMap::new(214013, 0x50, 10).unwrap();
        let all = map.cycles_through_states(0..(1u32 << 10)).unwrap();
        let f = map.traversal_fraction(&all);
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn h_block_deficit_mechanism() {
        // The design claim: the H block (128.84.192.0/18) pins the LCG
        // state's low 16 bits to an offset with *higher* 2-adic valuation
        // from the fixed point than D (131.107.0.0/20) or I (199.77.0.0/17),
        // so fewer seeds ever reach H.
        let deployment = hotspots_ipspace::ims_deployment();
        let find = |l: &str| deployment.iter().find(|b| b.label() == l).unwrap().prefix();
        let mut frac = BTreeMap::new();
        for label in ["D", "H", "I"] {
            let mut f = 0.0;
            for dll in SqlsortDll::ALL {
                let map = AffineMap::slammer(dll);
                // sample the block sparsely: valuation is constant per block
                let block = find(label);
                let states = (0..64u64).map(|i| {
                    let idx = i * (block.size() / 64);
                    block.nth(idx).to_le_state()
                });
                let cycles = map.cycles_through_states(states).unwrap();
                f += map.traversal_fraction(&cycles);
            }
            frac.insert(label, f / 3.0);
        }
        assert!(
            frac["H"] < 0.7 * frac["D"],
            "H fraction {} not clearly below D fraction {}",
            frac["H"],
            frac["D"]
        );
        assert!(frac["H"] < 0.7 * frac["I"]);
    }

    proptest! {
        #[test]
        fn algebraic_equals_iterated_cycle_length(
            x in any::<u32>(),
            b4 in any::<u32>(),
            bits in 8u8..=16,
        ) {
            // multiplier ≡ 5 mod 8 with fixed point (b ≡ 0 mod 4)
            let map = AffineMap::new(214013, (b4 & mask(bits)) & !3, bits).unwrap();
            let x = x & mask(bits);
            let alg = map.cycle_length(x).unwrap();
            let it = map.iterated_cycle_length(x, 1 << 17).unwrap();
            prop_assert_eq!(alg, it);
        }

        #[test]
        fn cycle_id_invariant_under_map(x in any::<u32>(), steps in 0u64..5000) {
            let map = AffineMap::slammer(SqlsortDll::Gold);
            let id0 = map.cycle_id(x).unwrap();
            let idn = map.cycle_id(map.jump(x, steps)).unwrap();
            prop_assert_eq!(id0, idn);
        }

        #[test]
        fn structure_covers_space(bits in 4u8..=20, b in any::<u32>()) {
            let map = AffineMap::new(214013, b & !3, bits).unwrap();
            let bands = map.cycle_structure().unwrap();
            let total: u128 = bands.iter()
                .map(|bd| u128::from(bd.num_cycles) * u128::from(bd.cycle_length))
                .sum();
            prop_assert_eq!(total, 1u128 << bits);
        }
    }
}
