//! The Slammer (SQL Sapphire) worm's flawed target generator.

use std::fmt;

use hotspots_ipspace::Ip;

use crate::lcg::{Lcg32, Prng32};

/// Slammer's LCG multiplier (the msvcrt constant, reused by the author).
pub const SLAMMER_MULTIPLIER: u32 = 214013;

/// The constant the author appears to have *intended* as the increment
/// (`0xffd9613c`), before the `OR`-for-`XOR` mistake corrupted it.
pub const SLAMMER_SEED_XOR: u32 = 0xffd9613c;

/// The versions of `sqlsort.dll` whose Import Address Table entry was left
/// in `ebx` and got OR-ed into Slammer's LCG increment.
///
/// The effective increment is `iat_entry XOR 0xffd9613c` (working backwards
/// from the observed `OR`: the three widely reported IAT values XORed with
/// the intended constant give the increments actually in the wild).
///
/// # Examples
///
/// ```
/// use hotspots_prng::SqlsortDll;
///
/// assert_eq!(SqlsortDll::Sp2.increment(), 0x77e89b18 ^ 0xffd9613c);
/// assert_eq!(SqlsortDll::ALL.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SqlsortDll {
    /// IAT entry `0x77f8313c` (widely reported; e.g. unpatched SQL 2000).
    Gold,
    /// IAT entry `0x77e89b18`.
    Sp2,
    /// IAT entry `0x77ea094c`.
    Sp3,
}

impl SqlsortDll {
    /// All three reported DLL versions, in a fixed order.
    pub const ALL: [SqlsortDll; 3] = [SqlsortDll::Gold, SqlsortDll::Sp2, SqlsortDll::Sp3];

    /// The leftover `sqlsort.dll` Import Address Table entry.
    pub const fn iat_entry(self) -> u32 {
        match self {
            SqlsortDll::Gold => 0x77f8313c,
            SqlsortDll::Sp2 => 0x77e89b18,
            SqlsortDll::Sp3 => 0x77ea094c,
        }
    }

    /// The effective (flawed) LCG increment for hosts running this DLL.
    ///
    /// # Examples
    ///
    /// ```
    /// use hotspots_prng::SqlsortDll;
    /// assert_eq!(SqlsortDll::Gold.increment(), 0x88215000);
    /// assert_eq!(SqlsortDll::Sp2.increment(), 0x8831fa24);
    /// assert_eq!(SqlsortDll::Sp3.increment(), 0x88336870);
    /// ```
    pub const fn increment(self) -> u32 {
        self.iat_entry() ^ SLAMMER_SEED_XOR
    }
}

impl fmt::Display for SqlsortDll {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SqlsortDll::Gold => "sqlsort.dll@0x77f8313c",
            SqlsortDll::Sp2 => "sqlsort.dll@0x77e89b18",
            SqlsortDll::Sp3 => "sqlsort.dll@0x77ea094c",
        };
        f.write_str(name)
    }
}

/// A Slammer instance's target generator:
/// `state ← 214013·state + b (mod 2^32)` with the flawed increment `b`
/// determined by the host's [`SqlsortDll`] version. Each new state *is* the
/// next target address, interpreted as an in-memory `in_addr` — i.e. the
/// low byte of the state becomes the first octet
/// ([`Ip::from_le_state`]).
///
/// Because the multiplier is odd the map is a permutation: every instance
/// walks one cycle of that permutation forever. Short cycles (the paper
/// found cycles with period 1) make an instance hammer a handful of
/// addresses like a targeted DoS; the aggregate bias toward addresses on
/// long cycles produces block-level hotspots. See [`crate::cycles`].
///
/// # Examples
///
/// ```
/// use hotspots_prng::{SlammerPrng, SqlsortDll};
///
/// let mut worm = SlammerPrng::new(SqlsortDll::Gold, 0x1234_5678);
/// let t0 = worm.next_target();
/// let t1 = worm.next_target();
/// assert_ne!(t0, t1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlammerPrng {
    dll: SqlsortDll,
    lcg: Lcg32,
}

impl SlammerPrng {
    /// Creates a generator for a host with the given DLL version, seeded
    /// with `seed` (in the wild: a `GetTickCount()`-derived value).
    pub const fn new(dll: SqlsortDll, seed: u32) -> SlammerPrng {
        SlammerPrng {
            dll,
            lcg: Lcg32::new(SLAMMER_MULTIPLIER, dll.increment(), seed),
        }
    }

    /// The DLL version (and hence increment) this instance runs with.
    pub const fn dll(&self) -> SqlsortDll {
        self.dll
    }

    /// The raw LCG state.
    pub const fn state(&self) -> u32 {
        self.lcg.state()
    }

    /// Generates the next target address.
    #[inline]
    pub fn next_target(&mut self) -> Ip {
        Ip::from_le_state(self.lcg.step())
    }

    /// Appends the next `n` target addresses to `out`, bit-identical to
    /// `n` calls to [`next_target`](SlammerPrng::next_target).
    ///
    /// States come from the [`Lcg32`] jump-ahead lane kernel in chunks;
    /// the state→address map is a byte swap, so the whole path is
    /// branch-free per chunk.
    pub fn fill_targets(&mut self, n: usize, out: &mut Vec<Ip>) {
        const CHUNK: usize = 256;
        let mut states = [0u32; CHUNK];
        out.reserve(n);
        let mut remaining = n;
        while remaining > 0 {
            let take = remaining.min(CHUNK);
            self.lcg.fill_states(&mut states[..take]);
            out.extend(states[..take].iter().map(|&s| Ip::from_le_state(s)));
            remaining -= take;
        }
    }
}

impl Prng32 for SlammerPrng {
    fn next_u32(&mut self) -> u32 {
        self.lcg.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn increments_match_paper_derivation() {
        // 0x77f8313c ^ 0xffd9613c etc. — the three flawed b values.
        assert_eq!(SqlsortDll::Gold.increment(), 0x88215000);
        assert_eq!(SqlsortDll::Sp2.increment(), 0x8831fa24);
        assert_eq!(SqlsortDll::Sp3.increment(), 0x88336870);
    }

    #[test]
    fn all_increments_divisible_by_four() {
        // This is what guarantees fixed points exist (gcd(a-1, 2^32) = 4).
        for dll in SqlsortDll::ALL {
            assert_eq!(dll.increment() % 4, 0, "{dll}");
        }
    }

    #[test]
    fn state_maps_to_ip_little_endian() {
        let mut worm = SlammerPrng::new(SqlsortDll::Gold, 0);
        let state_after = 0u32
            .wrapping_mul(SLAMMER_MULTIPLIER)
            .wrapping_add(SqlsortDll::Gold.increment());
        let ip = worm.next_target();
        assert_eq!(ip, Ip::from_le_state(state_after));
        // first octet is the LOW byte of the state
        assert_eq!(ip.octets()[0], (state_after & 0xff) as u8);
    }

    #[test]
    fn trajectory_is_deterministic_per_seed_and_dll() {
        let a: Vec<Ip> = {
            let mut w = SlammerPrng::new(SqlsortDll::Sp2, 42);
            (0..16).map(|_| w.next_target()).collect()
        };
        let b: Vec<Ip> = {
            let mut w = SlammerPrng::new(SqlsortDll::Sp2, 42);
            (0..16).map(|_| w.next_target()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_dlls_diverge() {
        let mut gold = SlammerPrng::new(SqlsortDll::Gold, 7);
        let mut sp3 = SlammerPrng::new(SqlsortDll::Sp3, 7);
        assert_ne!(gold.next_target(), sp3.next_target());
    }

    #[test]
    fn fixed_point_seed_repeats_one_address() {
        // A state s with 214013·s + b ≡ s (mod 2^32) is a period-1 cycle:
        // the instance attacks a single address forever (the paper's
        // "targeted denial of service" behavior). Solve for one:
        // (a-1)s ≡ -b, a-1 = 4·53503, b ≡ 0 mod 4.
        let b = SqlsortDll::Gold.increment();
        let inv53503 = mod_inverse_pow2(53503, 30);
        let s = (((b / 4).wrapping_neg() & ((1 << 30) - 1)) as u64 * inv53503 as u64 % (1 << 30))
            as u32;
        // lift to a solution mod 2^32
        let mut fixed = None;
        for j in 0..4u32 {
            let cand = s.wrapping_add(j << 30);
            if cand.wrapping_mul(SLAMMER_MULTIPLIER).wrapping_add(b) == cand {
                fixed = Some(cand);
                break;
            }
        }
        let fixed = fixed.expect("a fixed point exists because 4 | b");
        let mut worm = SlammerPrng::new(SqlsortDll::Gold, fixed);
        let targets: HashSet<Ip> = (0..100).map(|_| worm.next_target()).collect();
        assert_eq!(
            targets.len(),
            1,
            "fixed-point instance must hit one address"
        );
    }

    /// Inverse of odd `x` modulo `2^bits` by Newton iteration.
    fn mod_inverse_pow2(x: u32, bits: u32) -> u32 {
        let mask = if bits == 32 {
            u32::MAX
        } else {
            (1u32 << bits) - 1
        };
        let mut inv: u32 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(x.wrapping_mul(inv)));
        }
        inv & mask
    }

    proptest! {
        #[test]
        fn permutation_no_collision_in_prefix(seed in any::<u32>()) {
            // 1000 steps of a permutation from any seed never revisit a
            // state unless the cycle is shorter than 1000 — in which case
            // revisits must be periodic. Check consistency.
            let mut w = SlammerPrng::new(SqlsortDll::Sp3, seed);
            let mut seen = HashSet::new();
            let mut first_repeat = None;
            for i in 0..1000u32 {
                let s = w.next_u32();
                if !seen.insert(s) {
                    first_repeat = Some(i);
                    break;
                }
            }
            if let Some(at) = first_repeat {
                // period divides at+... : just re-run and confirm the same
                // repeat point (determinism of cycle entry).
                let mut w2 = SlammerPrng::new(SqlsortDll::Sp3, seed);
                let mut seen2 = HashSet::new();
                let mut again = None;
                for i in 0..1000u32 {
                    let s = w2.next_u32();
                    if !seen2.insert(s) {
                        again = Some(i);
                        break;
                    }
                }
                prop_assert_eq!(Some(at), again);
            }
        }
    }
}
