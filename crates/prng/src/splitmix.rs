//! A high-quality utility generator for baselines and workloads.

use crate::lcg::Prng32;

/// SplitMix64-based 32-bit generator.
///
/// This is **not** a malware PRNG: it exists so that the *uniform
/// baseline* worm (the paper's null model) scans with a generator whose
/// output really is statistically uniform, rather than inheriting LCG
/// artifacts that would contaminate the baseline. Workload construction
/// (population placement, seeds) uses the `rand` crate; this type is for
/// inner-loop target generation where we want `Prng32` compatibility and
/// speed.
///
/// # Examples
///
/// ```
/// use hotspots_prng::{Prng32, SplitMix};
///
/// let mut a = SplitMix::new(42);
/// let mut b = SplitMix::new(42);
/// assert_eq!(a.next_u32(), b.next_u32());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SplitMix {
    state: u64,
}

/// The Weyl-sequence increment: the state walks `seed + k·GAMMA`, so any
/// output in the stream is a pure function of its index — which is what
/// makes the batch kernel below a dependency-free counter loop.
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

#[inline]
const fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SplitMix {
    /// Creates a generator from a 64-bit seed.
    pub const fn new(seed: u64) -> SplitMix {
        SplitMix { state: seed }
    }

    /// Produces the next 64-bit word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix(self.state)
    }
}

impl Prng32 for SplitMix {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Counter-mode kernel: output k is `mix(base + (k+1)·GAMMA)`, so the
    /// loop has no carried dependency and autovectorizes. Bit-identical to
    /// the scalar stream by construction.
    fn fill_u32(&mut self, out: &mut [u32]) {
        let base = self.state;
        for (i, slot) in out.iter_mut().enumerate() {
            let s = base.wrapping_add(GAMMA.wrapping_mul(i as u64 + 1));
            *slot = (mix(s) >> 32) as u32;
        }
        self.state = base.wrapping_add(GAMMA.wrapping_mul(out.len() as u64));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix::new(7);
        let mut b = SplitMix::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix::new(7);
        let mut b = SplitMix::new(8);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_u32_matches_scalar_stream() {
        for len in [0usize, 1, 3, 8, 31, 64, 100] {
            let mut scalar = SplitMix::new(0xdead_beef ^ len as u64);
            let mut batch = scalar;
            let expect: Vec<u32> = (0..len).map(|_| scalar.next_u32()).collect();
            let mut got = vec![0u32; len];
            batch.fill_u32(&mut got);
            assert_eq!(got, expect, "len {len}");
            assert_eq!(batch, scalar, "state after len {len}");
        }
    }

    #[test]
    fn output_spreads_over_octet_buckets() {
        // sanity: 25600 draws into 256 first-octet bins, none empty
        let mut g = SplitMix::new(123);
        let mut bins = [0u32; 256];
        for _ in 0..25_600 {
            bins[(g.next_u32() >> 24) as usize] += 1;
        }
        assert!(bins.iter().all(|&c| c > 40), "suspiciously uneven");
    }
}
