//! Parametric 32-bit linear congruential generators.

/// A source of 32-bit pseudo-random words.
///
/// All malware generators in this workspace implement this trait, so the
/// targeting strategies in `hotspots-targeting` can be generic over the
/// PRNG driving them.
pub trait Prng32 {
    /// Produces the next 32-bit word and advances the generator.
    fn next_u32(&mut self) -> u32;

    /// Produces a value uniformly below `bound` using the generator's full
    /// 32-bit output (multiply-shift reduction; slightly biased for huge
    /// bounds, exactly like the worm code it models).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be non-zero");
        ((u64::from(self.next_u32()) * u64::from(bound)) >> 32) as u32
    }

    /// Fills `out` with the exact word sequence `out.len()` calls to
    /// [`next_u32`](Prng32::next_u32) would produce, leaving the generator
    /// in the same final state.
    ///
    /// The default implementation is the scalar loop; generators with
    /// jumpable or counter-based state override it with branch-free lane
    /// kernels that the compiler can autovectorize. Overrides must be
    /// bit-identical to the scalar sequence — the batch engine path relies
    /// on it.
    fn fill_u32(&mut self, out: &mut [u32]) {
        for slot in out {
            *slot = self.next_u32();
        }
    }
}

/// A linear congruential generator over `Z/2^32`:
/// `state ← mul · state + inc (mod 2^32)`.
///
/// This is the raw machinery behind both the msvcrt `rand()` Blaster uses
/// and Slammer's hand-rolled generator. When `mul` is odd the map is a
/// permutation of the full 32-bit space; its cycle structure is analyzed in
/// [`crate::cycles`].
///
/// # Examples
///
/// ```
/// use hotspots_prng::{Lcg32, Prng32};
///
/// // Slammer's multiplier with the intended (never-shipped) increment.
/// let mut lcg = Lcg32::new(214013, 0xffd9613c, 0x12345678);
/// let s0 = lcg.state();
/// let s1 = lcg.next_u32();
/// assert_eq!(s1, s0.wrapping_mul(214013).wrapping_add(0xffd9613c));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Lcg32 {
    mul: u32,
    inc: u32,
    state: u32,
}

impl Lcg32 {
    /// Creates a generator with multiplier `mul`, increment `inc`, and
    /// initial state `seed`.
    pub const fn new(mul: u32, inc: u32, seed: u32) -> Lcg32 {
        Lcg32 {
            mul,
            inc,
            state: seed,
        }
    }

    /// The multiplier `a`.
    pub const fn mul(&self) -> u32 {
        self.mul
    }

    /// The increment `b`.
    pub const fn inc(&self) -> u32 {
        self.inc
    }

    /// The current state (which is also the last output).
    pub const fn state(&self) -> u32 {
        self.state
    }

    /// Re-seeds the generator without changing its parameters.
    pub fn reseed(&mut self, seed: u32) {
        self.state = seed;
    }

    /// Advances one step and returns the new state.
    #[inline]
    pub fn step(&mut self) -> u32 {
        self.state = self.state.wrapping_mul(self.mul).wrapping_add(self.inc);
        self.state
    }

    /// Number of independent output lanes the batch kernel interleaves.
    ///
    /// Eight `u32` lanes fill one AVX2 register; on SSE-only and scalar
    /// targets the compiler still unrolls the loop profitably.
    pub const LANES: usize = 8;

    /// Writes the next `out.len()` states into `out` (bit-identical to
    /// calling [`step`](Lcg32::step) repeatedly) using a jump-ahead lane
    /// kernel.
    ///
    /// The k-step composition of `s ← a·s + c` is `s ← a^k·s + c_k` with
    /// `c_{k+1} = a·c_k + c`, all mod 2^32 — exact in wrapping arithmetic.
    /// Each of the [`LANES`](Lcg32::LANES) lanes starts offset by one step
    /// and advances by the `LANES`-step jump, so a chunk of consecutive
    /// outputs is produced per iteration with no loop-carried dependency
    /// between lanes.
    pub fn fill_states(&mut self, out: &mut [u32]) {
        const LANES: usize = Lcg32::LANES;
        let split = out.len() - out.len() % LANES;
        let (chunks, tail) = out.split_at_mut(split);
        if !chunks.is_empty() {
            // Lane i holds the output of step base+i+1; while seeding the
            // lanes we also build the LANES-step jump constants
            // (a^LANES, c_LANES) by the same recurrence.
            let mut lanes = [0u32; LANES];
            let (mut jump_mul, mut jump_inc) = (1u32, 0u32);
            let mut s = self.state;
            for lane in &mut lanes {
                s = s.wrapping_mul(self.mul).wrapping_add(self.inc);
                *lane = s;
                jump_inc = jump_inc.wrapping_mul(self.mul).wrapping_add(self.inc);
                jump_mul = jump_mul.wrapping_mul(self.mul);
            }
            for chunk in chunks.chunks_exact_mut(LANES) {
                chunk.copy_from_slice(&lanes);
                for lane in &mut lanes {
                    *lane = lane.wrapping_mul(jump_mul).wrapping_add(jump_inc);
                }
            }
            // The state *is* the last output for an LCG.
            self.state = chunks[chunks.len() - 1];
        }
        for slot in tail {
            *slot = self.step();
        }
    }
}

impl Prng32 for Lcg32 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.step()
    }

    #[inline]
    fn fill_u32(&mut self, out: &mut [u32]) {
        self.fill_states(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn step_matches_definition() {
        let mut lcg = Lcg32::new(214013, 2531011, 1);
        assert_eq!(lcg.step(), 1u32.wrapping_mul(214013).wrapping_add(2531011));
    }

    #[test]
    fn reseed_resets_trajectory() {
        let mut a = Lcg32::new(214013, 2531011, 7);
        let first: Vec<u32> = (0..5).map(|_| a.step()).collect();
        a.reseed(7);
        let second: Vec<u32> = (0..5).map(|_| a.step()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut lcg = Lcg32::new(214013, 2531011, 99);
        for _ in 0..1000 {
            let v = lcg.next_below(20);
            assert!(v < 20);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn next_below_zero_panics() {
        let mut lcg = Lcg32::new(214013, 2531011, 99);
        let _ = lcg.next_below(0);
    }

    proptest! {
        #[test]
        fn fill_states_matches_scalar_steps(
            seed in any::<u32>(),
            inc in any::<u32>(),
            len in 0usize..100,
        ) {
            // The lane kernel must be bit-identical to the scalar walk and
            // leave the generator in the same state, across lengths that
            // cover empty, sub-chunk, exact-chunk, and ragged-tail cases.
            let mut scalar = Lcg32::new(214013, inc, seed);
            let mut batch = scalar;
            let expect: Vec<u32> = (0..len).map(|_| scalar.step()).collect();
            let mut got = vec![0u32; len];
            batch.fill_states(&mut got);
            prop_assert_eq!(got, expect);
            prop_assert_eq!(batch.state(), scalar.state());
        }

        #[test]
        fn odd_multiplier_is_injective_one_step(seed_a in any::<u32>(), seed_b in any::<u32>(), inc in any::<u32>()) {
            // For odd multipliers the map is a bijection, so distinct states
            // must step to distinct states.
            prop_assume!(seed_a != seed_b);
            let mut x = Lcg32::new(214013, inc, seed_a);
            let mut y = Lcg32::new(214013, inc, seed_b);
            prop_assert_ne!(x.step(), y.step());
        }

        #[test]
        fn next_below_uniformish_extremes(seed in any::<u32>()) {
            let mut lcg = Lcg32::new(214013, 2531011, seed);
            let v = lcg.next_below(1);
            prop_assert_eq!(v, 0);
        }
    }
}
