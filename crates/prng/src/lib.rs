//! Pseudo-random number generation substrate for the hotspots reproduction.
//!
//! The paper's *algorithmic factors* are mostly PRNG stories:
//!
//! * **Blaster** seeds the msvcrt LCG ([`MsvcrtRand`]) with
//!   `GetTickCount()`, a terrible entropy source because worms launched at
//!   boot see only a narrow band of tick values ([`entropy`]).
//! * **Witty** ([`WittyPrng`]) reused the same LCG but emitted only the
//!   high 16 bits per call, leaving a fixed fraction of the address space
//!   permanently unreachable.
//! * **Slammer** rolls its own linear congruential generator
//!   ([`SlammerPrng`]) whose increment was corrupted by an `OR`-instead-of-
//!   `XOR` bug, leaving three possible increments depending on the victim's
//!   `sqlsort.dll` version ([`SqlsortDll`]). The resulting permutations of
//!   32-bit space decompose into 64 cycles of wildly uneven length — the
//!   mechanism behind per-host and aggregate Slammer hotspots. The exact
//!   cycle structure is computed algebraically in [`cycles`].
//!
//! Everything here is bit-faithful to the published algorithms; the `rand`
//! crate is used only for *workload* randomness (e.g. sampling boot times),
//! never for the malware arithmetic itself.
//!
//! # Examples
//!
//! ```
//! use hotspots_prng::{MsvcrtRand, Prng32};
//!
//! // The classic MSVC rand() sequence for srand(1).
//! let mut r = MsvcrtRand::with_seed(1);
//! assert_eq!(r.rand15(), 41);
//! assert_eq!(r.rand15(), 18467);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod cycles;
pub mod entropy;
mod lcg;
mod msvcrt;
mod slammer;
mod splitmix;
mod witty;

pub use lcg::{Lcg32, Prng32};
pub use msvcrt::{recover_seeds, MsvcrtRand};
pub use slammer::{SlammerPrng, SqlsortDll, SLAMMER_MULTIPLIER, SLAMMER_SEED_XOR};
pub use splitmix::SplitMix;
pub use witty::WittyPrng;
