//! Boot-time entropy models: why `GetTickCount()` is a terrible seed.
//!
//! Blaster seeds msvcrt's `rand()` with `GetTickCount()`, the number of
//! milliseconds since boot. Because the worm is started from the Run
//! registry key, on a rebooted machine the call happens a near-constant
//! ~30 seconds after power-on — the paper instrumented Pentium II/III/IV
//! machines and measured a mean boot time of about 30 s with a 1 s
//! standard deviation. Correlating observed Blaster hotspots back through
//! the seed→trajectory mapping, the paper found implied launch delays of
//! roughly 1–20 minutes, centered on 4–5 minutes (boot plus the time until
//! the box was actually infected/restarted the service).
//!
//! This module reproduces those distributions so the Fig 1 experiment can
//! draw worm seeds the way the real population did.
//!
//! # Examples
//!
//! ```
//! use hotspots_prng::entropy::{HardwareGeneration, SeedModel};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let model = SeedModel::blaster_reboot(HardwareGeneration::PentiumIii);
//! let seed = model.sample_seed(&mut rng);
//! // a fresh-boot seed is a few tens of thousands of milliseconds
//! assert!(seed > 20_000 && seed < 45_000);
//! ```

use std::fmt;

use rand::Rng;

/// A `GetTickCount()` value: milliseconds since boot, truncated to 32 bits
/// exactly like the Windows API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct TickCount(u32);

impl TickCount {
    /// Creates a tick count from milliseconds.
    pub const fn from_millis(ms: u32) -> TickCount {
        TickCount(ms)
    }

    /// Creates a tick count from (non-negative) seconds, saturating at the
    /// 32-bit boundary (≈ 49.7 days) like the real counter wraps.
    pub fn from_secs_f64(secs: f64) -> TickCount {
        let ms = (secs.max(0.0) * 1000.0).round();
        TickCount(if ms >= u32::MAX as f64 {
            u32::MAX
        } else {
            ms as u32
        })
    }

    /// Milliseconds since boot.
    pub const fn as_millis(self) -> u32 {
        self.0
    }

    /// Seconds since boot.
    pub fn as_secs_f64(self) -> f64 {
        f64::from(self.0) / 1000.0
    }
}

impl fmt::Display for TickCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / 1000;
        let (h, m, s, ms) = (
            total_secs / 3600,
            (total_secs / 60) % 60,
            total_secs % 60,
            self.0 % 1000,
        );
        if h > 0 {
            write!(f, "{h}h{m:02}m{s:02}.{ms:03}s")
        } else if m > 0 {
            write!(f, "{m}m{s:02}.{ms:03}s")
        } else {
            write!(f, "{s}.{ms:03}s")
        }
    }
}

impl From<TickCount> for u32 {
    fn from(t: TickCount) -> u32 {
        t.0
    }
}

/// The hardware generations the paper instrumented with its reboot-loop
/// tick-count logger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum HardwareGeneration {
    /// Intel Pentium II era machines (slowest boots).
    PentiumIi,
    /// Intel Pentium III era machines.
    PentiumIii,
    /// Intel Pentium 4 era machines (fastest boots).
    PentiumIv,
}

impl HardwareGeneration {
    /// All three generations.
    pub const ALL: [HardwareGeneration; 3] = [
        HardwareGeneration::PentiumIi,
        HardwareGeneration::PentiumIii,
        HardwareGeneration::PentiumIv,
    ];

    /// The boot-time distribution measured for this generation:
    /// mean ≈ 30 s, σ ≈ 1 s, with slightly faster boots on newer hardware.
    pub fn boot_time(self) -> BootTimeModel {
        match self {
            HardwareGeneration::PentiumIi => BootTimeModel::new(31.5, 1.0),
            HardwareGeneration::PentiumIii => BootTimeModel::new(30.0, 1.0),
            HardwareGeneration::PentiumIv => BootTimeModel::new(28.5, 1.0),
        }
    }
}

impl fmt::Display for HardwareGeneration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HardwareGeneration::PentiumIi => "Pentium II",
            HardwareGeneration::PentiumIii => "Pentium III",
            HardwareGeneration::PentiumIv => "Pentium IV",
        })
    }
}

/// A truncated-normal model of the time from power-on to the worm's
/// `srand(GetTickCount())` call on a freshly rebooted machine.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BootTimeModel {
    mean_secs: f64,
    std_secs: f64,
}

impl BootTimeModel {
    /// Creates a model with the given mean and standard deviation in
    /// seconds.
    ///
    /// # Panics
    ///
    /// Panics if `mean_secs <= 0` or `std_secs < 0`.
    pub fn new(mean_secs: f64, std_secs: f64) -> BootTimeModel {
        assert!(mean_secs > 0.0, "mean boot time must be positive");
        assert!(std_secs >= 0.0, "std must be non-negative");
        BootTimeModel {
            mean_secs,
            std_secs,
        }
    }

    /// Mean boot time in seconds.
    pub fn mean_secs(&self) -> f64 {
        self.mean_secs
    }

    /// Standard deviation in seconds.
    pub fn std_secs(&self) -> f64 {
        self.std_secs
    }

    /// Samples a boot-to-launch tick count (truncated below at 1 s).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> TickCount {
        let z = standard_normal(rng);
        TickCount::from_secs_f64((self.mean_secs + z * self.std_secs).max(1.0))
    }
}

/// A log-normal model of the *additional* delay between boot and the
/// moment a running machine actually launches the worm (restart of an
/// infected service, infection of an already-up host, …).
///
/// The paper's seed-inference found delays from ~1 to ~20 minutes centered
/// on 4–5 minutes, which a log-normal with median ≈ 4.5 min and
/// σ(log) ≈ 0.75 matches well.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LaunchDelayModel {
    median_secs: f64,
    log_sigma: f64,
}

impl LaunchDelayModel {
    /// Creates a model with median delay `median_secs` and log-space
    /// standard deviation `log_sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `median_secs <= 0` or `log_sigma < 0`.
    pub fn new(median_secs: f64, log_sigma: f64) -> LaunchDelayModel {
        assert!(median_secs > 0.0, "median must be positive");
        assert!(log_sigma >= 0.0, "log sigma must be non-negative");
        LaunchDelayModel {
            median_secs,
            log_sigma,
        }
    }

    /// The paper-matched Blaster population delay: median 4.5 minutes,
    /// log-σ 0.75 (≈ 1–20 minute bulk).
    pub fn blaster_population() -> LaunchDelayModel {
        LaunchDelayModel::new(4.5 * 60.0, 0.75)
    }

    /// Median delay in seconds.
    pub fn median_secs(&self) -> f64 {
        self.median_secs
    }

    /// Samples a delay tick count.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> TickCount {
        let z = standard_normal(rng);
        TickCount::from_secs_f64(self.median_secs * (z * self.log_sigma).exp())
    }
}

/// A full seed model: tick count at the worm's `srand` call.
///
/// # Examples
///
/// ```
/// use hotspots_prng::entropy::{HardwareGeneration, SeedModel};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let pop = SeedModel::blaster_population(HardwareGeneration::PentiumIv);
/// let seeds: Vec<u32> = (0..100).map(|_| pop.sample_seed(&mut rng)).collect();
/// // delays are minutes-scale: all within ~2.8 hours (paper's search bound)
/// assert!(seeds.iter().all(|&s| s < 10_000_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SeedModel {
    boot: BootTimeModel,
    delay: Option<LaunchDelayModel>,
    resolution_ms: u32,
}

impl SeedModel {
    /// The Windows system timer granularity: `GetTickCount()` does not
    /// advance every millisecond — it jumps in ~15.6 ms increments, so
    /// the *entire* seed space is quantized onto multiples of this value.
    /// This quantization is a large part of why independent machines
    /// collide on identical seeds.
    pub const TICK_RESOLUTION_MS: u32 = 16;

    /// Seed model for a worm launched immediately at boot (registry Run
    /// key on a rebooted machine): boot time only. Blaster's RPC exploit
    /// frequently crashed the service and forced reboots, making this the
    /// dominant launch mode.
    pub fn blaster_reboot(generation: HardwareGeneration) -> SeedModel {
        SeedModel {
            boot: generation.boot_time(),
            delay: None,
            resolution_ms: Self::TICK_RESOLUTION_MS,
        }
    }

    /// Seed model for the broader infected population: boot time plus a
    /// minutes-scale launch delay.
    pub fn blaster_population(generation: HardwareGeneration) -> SeedModel {
        SeedModel {
            boot: generation.boot_time(),
            delay: Some(LaunchDelayModel::blaster_population()),
            resolution_ms: Self::TICK_RESOLUTION_MS,
        }
    }

    /// Builds a model from explicit parts (tick resolution defaults to
    /// [`Self::TICK_RESOLUTION_MS`]).
    pub fn from_parts(boot: BootTimeModel, delay: Option<LaunchDelayModel>) -> SeedModel {
        SeedModel {
            boot,
            delay,
            resolution_ms: Self::TICK_RESOLUTION_MS,
        }
    }

    /// Overrides the timer granularity (1 = ideal millisecond timer).
    ///
    /// # Panics
    ///
    /// Panics if `resolution_ms == 0`.
    pub fn with_resolution_ms(mut self, resolution_ms: u32) -> SeedModel {
        assert!(resolution_ms > 0, "timer resolution must be positive");
        self.resolution_ms = resolution_ms;
        self
    }

    /// Samples the `GetTickCount()` value passed to `srand`, quantized to
    /// the timer resolution exactly like the real counter.
    pub fn sample_seed<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let boot = self.boot.sample(rng).as_millis();
        let delay = self.delay.map_or(0, |d| d.sample(rng).as_millis());
        let raw = boot.wrapping_add(delay);
        raw - raw % self.resolution_ms
    }
}

/// Standard normal via Box–Muller (keeps us inside the approved `rand`
/// crate without `rand_distr`).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tick_count_conversions() {
        assert_eq!(TickCount::from_secs_f64(2.5).as_millis(), 2500);
        assert_eq!(TickCount::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(TickCount::from_secs_f64(-5.0).as_millis(), 0);
        assert_eq!(TickCount::from_secs_f64(1e12).as_millis(), u32::MAX);
    }

    #[test]
    fn tick_count_display() {
        assert_eq!(TickCount::from_millis(2_300).to_string(), "2.300s");
        assert_eq!(TickCount::from_millis(138_000).to_string(), "2m18.000s");
        assert_eq!(
            TickCount::from_millis(7_380_000).to_string(),
            "2h03m00.000s"
        );
    }

    #[test]
    fn boot_times_cluster_near_30_seconds() {
        let mut rng = StdRng::seed_from_u64(42);
        for generation in HardwareGeneration::ALL {
            let model = generation.boot_time();
            let n = 2000;
            let mean: f64 = (0..n)
                .map(|_| model.sample(&mut rng).as_secs_f64())
                .sum::<f64>()
                / f64::from(n);
            assert!(
                (mean - model.mean_secs()).abs() < 0.2,
                "{generation}: sample mean {mean} far from {}",
                model.mean_secs()
            );
        }
    }

    #[test]
    fn newer_hardware_boots_faster() {
        assert!(
            HardwareGeneration::PentiumIv.boot_time().mean_secs()
                < HardwareGeneration::PentiumIi.boot_time().mean_secs()
        );
    }

    #[test]
    fn reboot_seeds_are_narrow_band() {
        // The crux of the Blaster story: seeds from rebooted machines span
        // only a few thousand of the 2^32 possible values.
        let mut rng = StdRng::seed_from_u64(7);
        let model = SeedModel::blaster_reboot(HardwareGeneration::PentiumIii);
        let seeds: Vec<u32> = (0..1000).map(|_| model.sample_seed(&mut rng)).collect();
        let min = *seeds.iter().min().unwrap();
        let max = *seeds.iter().max().unwrap();
        assert!(max - min < 10_000, "band {min}..{max} too wide");
        assert!(f64::from(max - min) / (u32::MAX as f64) < 1e-5);
    }

    #[test]
    fn population_delays_center_on_minutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let model = LaunchDelayModel::blaster_population();
        let mut delays: Vec<f64> = (0..4000)
            .map(|_| model.sample(&mut rng).as_secs_f64() / 60.0)
            .collect();
        delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = delays[delays.len() / 2];
        assert!((3.5..6.0).contains(&median), "median {median} min");
        // bulk within 1..=20 minutes, matching the paper's inferred range
        let in_bulk = delays.iter().filter(|d| (1.0..=20.0).contains(*d)).count();
        assert!(in_bulk as f64 / delays.len() as f64 > 0.8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn boot_model_rejects_nonpositive_mean() {
        let _ = BootTimeModel::new(0.0, 1.0);
    }

    #[test]
    fn seeds_are_quantized_to_timer_resolution() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = SeedModel::blaster_population(HardwareGeneration::PentiumIii);
        for _ in 0..200 {
            assert_eq!(
                model.sample_seed(&mut rng) % SeedModel::TICK_RESOLUTION_MS,
                0
            );
        }
        // an ideal 1ms timer produces non-multiples too
        let ideal = model.with_resolution_ms(1);
        let any_offset = (0..200).any(|_| !ideal.sample_seed(&mut rng).is_multiple_of(16));
        assert!(any_offset);
    }

    #[test]
    fn reboot_seeds_collide_across_machines() {
        // the entropy failure in one assertion: hundreds of independent
        // machines share a handful of possible seeds
        let mut rng = StdRng::seed_from_u64(6);
        let model = SeedModel::blaster_reboot(HardwareGeneration::PentiumIii);
        let seeds: std::collections::HashSet<u32> =
            (0..1000).map(|_| model.sample_seed(&mut rng)).collect();
        assert!(
            seeds.len() < 500,
            "{} distinct seeds from 1000 reboots — too much entropy",
            seeds.len()
        );
    }

    #[test]
    fn seed_model_is_deterministic_given_rng_seed() {
        let model = SeedModel::blaster_population(HardwareGeneration::PentiumIi);
        let a: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..10).map(|_| model.sample_seed(&mut rng)).collect()
        };
        let b: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..10).map(|_| model.sample_seed(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
