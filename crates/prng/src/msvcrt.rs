//! The Microsoft C runtime `rand()`, as used by the Blaster worm.

use crate::lcg::{Lcg32, Prng32};

/// msvcrt's `rand()` multiplier.
pub(crate) const MSVCRT_MUL: u32 = 214013;
/// msvcrt's `rand()` increment.
pub(crate) const MSVCRT_INC: u32 = 2531011;

/// The Microsoft C runtime pseudo-random generator:
/// `state ← state·214013 + 2531011 (mod 2^32)`, output
/// `(state >> 16) & 0x7fff`.
///
/// Blaster calls `srand(GetTickCount())` at startup and then uses `rand()`
/// to pick its scanning start address. Because `GetTickCount()` restarts at
/// zero on every reboot and Blaster launches from the Run registry key
/// about 30 seconds after boot, the seed — and therefore the entire
/// scanning trajectory — is drawn from a tiny, predictable set. See
/// [`crate::entropy`].
///
/// # Examples
///
/// ```
/// use hotspots_prng::MsvcrtRand;
///
/// let mut r = MsvcrtRand::with_seed(1);
/// let first: Vec<u16> = (0..5).map(|_| r.rand15()).collect();
/// assert_eq!(first, [41, 18467, 6334, 26500, 19169]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MsvcrtRand {
    lcg: Lcg32,
}

impl MsvcrtRand {
    /// Equivalent of `srand(seed)`.
    pub const fn with_seed(seed: u32) -> MsvcrtRand {
        MsvcrtRand {
            lcg: Lcg32::new(MSVCRT_MUL, MSVCRT_INC, seed),
        }
    }

    /// Equivalent of `rand()`: a 15-bit value in `0..=32767`.
    #[inline]
    pub fn rand15(&mut self) -> u16 {
        ((self.lcg.step() >> 16) & 0x7fff) as u16
    }

    /// `rand() % modulus`, the idiom Blaster's scanning code uses
    /// (e.g. `rand() % 20` when perturbing the third octet).
    ///
    /// # Panics
    ///
    /// Panics if `modulus == 0`.
    #[inline]
    pub fn rand_mod(&mut self, modulus: u16) -> u16 {
        assert!(modulus > 0, "modulus must be non-zero");
        self.rand15() % modulus
    }

    /// The raw 32-bit LCG state (useful for forensics/tests).
    pub const fn state(&self) -> u32 {
        self.lcg.state()
    }
}

/// Recovers the `srand` seeds consistent with an observed `rand()`
/// output sequence — the forensic inverse behind the paper's
/// seed↔hotspot correlation.
///
/// `rand()` discards the state's low 16 bits and its top bit, so a
/// single output matches 2^17 seeds; each further output cuts the
/// candidate set by ~2^15. Two to three observed outputs typically pin
/// the seed band uniquely within `seed_range`.
///
/// The search is exact and costs `O(|seed_range|)` LCG steps.
///
/// # Examples
///
/// ```
/// use hotspots_prng::{recover_seeds, MsvcrtRand};
///
/// let mut r = MsvcrtRand::with_seed(138_000);
/// let observed: Vec<u16> = (0..3).map(|_| r.rand15()).collect();
/// let candidates = recover_seeds(&observed, 0..1_000_000);
/// assert!(candidates.contains(&138_000));
/// assert!(candidates.len() < 40, "3 outputs nearly pin the seed");
/// ```
pub fn recover_seeds(observed: &[u16], seed_range: std::ops::Range<u32>) -> Vec<u32> {
    if observed.is_empty() {
        return seed_range.collect();
    }
    seed_range
        .filter(|&seed| {
            let mut r = MsvcrtRand::with_seed(seed);
            observed.iter().all(|&o| r.rand15() == o)
        })
        .collect()
}

impl Prng32 for MsvcrtRand {
    /// Produces a full 32-bit word the way C programs typically do from
    /// 15-bit `rand()` outputs: three calls glued together
    /// (`r0 | r1<<15 | r2<<30`).
    fn next_u32(&mut self) -> u32 {
        let r0 = u32::from(self.rand15());
        let r1 = u32::from(self.rand15());
        let r2 = u32::from(self.rand15());
        r0 | (r1 << 15) | (r2 << 30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_srand1_sequence() {
        // Reference values produced by MSVC's CRT for srand(1).
        let mut r = MsvcrtRand::with_seed(1);
        let seq: Vec<u16> = (0..10).map(|_| r.rand15()).collect();
        assert_eq!(
            seq,
            [41, 18467, 6334, 26500, 19169, 15724, 11478, 29358, 26962, 24464]
        );
    }

    #[test]
    fn srand0_sequence_starts_with_38() {
        let mut r = MsvcrtRand::with_seed(0);
        assert_eq!(r.rand15(), 38);
    }

    #[test]
    fn rand_mod_bounds() {
        let mut r = MsvcrtRand::with_seed(12345);
        for _ in 0..100 {
            assert!(r.rand_mod(20) < 20);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rand_mod_zero_panics() {
        MsvcrtRand::with_seed(1).rand_mod(0);
    }

    #[test]
    fn nearby_seeds_give_different_streams() {
        // The whole Blaster story: close tick counts give different but
        // *predictable* streams.
        let mut a = MsvcrtRand::with_seed(30_000);
        let mut b = MsvcrtRand::with_seed(30_001);
        assert_ne!(a.rand15(), b.rand15());
    }

    #[test]
    fn recover_seeds_handles_edges() {
        // empty observation: everything in range is a candidate
        assert_eq!(recover_seeds(&[], 5..8), vec![5, 6, 7]);
        // impossible observation: nothing survives
        let mut r = MsvcrtRand::with_seed(10);
        let first = r.rand15();
        let wrong = first.wrapping_add(1) & 0x7fff;
        assert!(recover_seeds(&[wrong, 0, 0], 10..11).is_empty());
    }

    proptest! {
        #[test]
        fn recovered_seeds_reproduce_observations(seed in 0u32..500_000) {
            let mut r = MsvcrtRand::with_seed(seed);
            let observed: Vec<u16> = (0..4).map(|_| r.rand15()).collect();
            let lo = seed.saturating_sub(10_000);
            let candidates = recover_seeds(&observed, lo..seed + 10_000);
            prop_assert!(candidates.contains(&seed));
            for c in candidates {
                let mut check = MsvcrtRand::with_seed(c);
                for &o in &observed {
                    prop_assert_eq!(check.rand15(), o);
                }
            }
        }

        #[test]
        fn rand15_is_15_bits(seed in any::<u32>()) {
            let mut r = MsvcrtRand::with_seed(seed);
            for _ in 0..16 {
                prop_assert!(r.rand15() <= 0x7fff);
            }
        }

        #[test]
        fn deterministic_for_equal_seeds(seed in any::<u32>()) {
            let mut a = MsvcrtRand::with_seed(seed);
            let mut b = MsvcrtRand::with_seed(seed);
            for _ in 0..8 {
                prop_assert_eq!(a.rand15(), b.rand15());
            }
        }
    }
}
