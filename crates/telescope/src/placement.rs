//! Sensor placement strategies (Figure 5's three deployments).
//!
//! Hotspots make placement matter: the paper shows that 10,000 randomly
//! placed /24 sensors detect a NAT-biased worm far more slowly than 255
//! sensors placed inside the hotspot's /8. These builders produce the
//! compared deployments as lists of disjoint /24 prefixes ready for a
//! [`DetectorField`](crate::DetectorField).

use std::collections::BTreeSet;

use hotspots_ipspace::{special, Bucket8, Ip, Prefix};
use rand::Rng;

/// `n` distinct /24 sensors placed uniformly at random in globally
/// routable space, skipping any /24 overlapping `avoid`.
///
/// # Panics
///
/// Panics if fewer than `n` distinct /24s can be found in 100·n draws
/// (practically impossible for sane `n`).
///
/// # Examples
///
/// ```
/// use hotspots_telescope::placement;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let sensors = placement::random_slash24s(100, &[], &mut rng);
/// assert_eq!(sensors.len(), 100);
/// ```
pub fn random_slash24s<R: Rng + ?Sized>(n: usize, avoid: &[Prefix], rng: &mut R) -> Vec<Prefix> {
    let mut chosen: BTreeSet<Prefix> = BTreeSet::new();
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0usize;
    let max_attempts = n.saturating_mul(100).max(10_000);
    while out.len() < n {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "could not place {n} disjoint /24 sensors"
        );
        let ip = Ip::new(rng.gen::<u32>());
        if !special::is_globally_routable(ip) {
            continue;
        }
        let p = Prefix::containing(ip, 24);
        if avoid.iter().any(|a| a.overlaps(p)) {
            continue;
        }
        if chosen.insert(p) {
            out.push(p);
        }
    }
    out
}

/// One randomly positioned /24 sensor inside each given /16 — the
/// Figure 5(b) deployment ("we randomly placed a /24 detector in each of
/// the 4481 /16 networks with at least one vulnerable host").
///
/// # Panics
///
/// Panics if any input prefix is longer than /16 (it must be able to
/// contain a /24... i.e. length ≤ 24) — in practice the inputs are /16s.
pub fn one_per_prefix<R: Rng + ?Sized>(prefixes: &[Prefix], rng: &mut R) -> Vec<Prefix> {
    prefixes
        .iter()
        .map(|p| {
            assert!(p.len() <= 24, "cannot place a /24 inside {p}");
            let slots = 1u64 << (24 - p.len());
            let slot = rng.gen_range(0..slots);
            Prefix::containing(p.nth(slot << 8), 24)
        })
        .collect()
}

/// `n` /24 sensors placed uniformly inside the `k` /8 networks holding
/// the most members of `population` — Figure 5(c)'s "collaboratively
/// determined" placement.
///
/// # Panics
///
/// Panics if `population` is empty, `k == 0`, or placement fails.
pub fn inside_top_slash8s<R: Rng + ?Sized>(
    population: &[Ip],
    k: usize,
    n: usize,
    rng: &mut R,
) -> Vec<Prefix> {
    assert!(!population.is_empty(), "population must be non-empty");
    assert!(k > 0, "k must be positive");
    let mut counts: std::collections::BTreeMap<Bucket8, u64> = std::collections::BTreeMap::new();
    for &ip in population {
        *counts.entry(ip.bucket8()).or_insert(0) += 1;
    }
    let mut by_count: Vec<(Bucket8, u64)> = counts.into_iter().collect();
    by_count.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let top: Vec<Prefix> = by_count.iter().take(k).map(|(b, _)| b.prefix()).collect();

    let mut chosen: BTreeSet<Prefix> = BTreeSet::new();
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0usize;
    let max_attempts = n.saturating_mul(100).max(10_000);
    while out.len() < n {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "could not place {n} disjoint /24 sensors in top-{k} /8s"
        );
        let slash8 = top[rng.gen_range(0..top.len())];
        let slot = rng.gen_range(0..(1u64 << 16));
        let p = Prefix::containing(slash8.nth(slot << 8), 24);
        if chosen.insert(p) {
            out.push(p);
        }
    }
    out
}

/// One /24 sensor in each public /16 of `192.0.0.0/8`, skipping
/// `192.168.0.0/16` — the 255-sensor hotspot-exploiting deployment of
/// Figure 5(c)'s third experiment.
pub fn inside_192_per_slash16<R: Rng + ?Sized>(rng: &mut R) -> Vec<Prefix> {
    let slash8 = Prefix::containing(Ip::from_octets(192, 0, 0, 0), 8);
    let publics: Vec<Prefix> = slash8
        .subnets(16)
        .filter(|s| !s.overlaps(special::PRIVATE_192))
        .collect();
    one_per_prefix(&publics, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn random_sensors_are_distinct_routable_slash24s() {
        let sensors = random_slash24s(500, &[], &mut rng());
        assert_eq!(sensors.len(), 500);
        let set: BTreeSet<Prefix> = sensors.iter().copied().collect();
        assert_eq!(set.len(), 500);
        for s in &sensors {
            assert_eq!(s.len(), 24);
            assert!(special::is_globally_routable(s.base()), "{s}");
        }
    }

    #[test]
    fn random_sensors_respect_avoid_list() {
        let avoid: Vec<Prefix> = vec!["0.0.0.0/1".parse().unwrap()];
        let sensors = random_slash24s(200, &avoid, &mut rng());
        for s in &sensors {
            assert!(s.base().octets()[0] >= 128, "{s} inside avoided half");
        }
    }

    #[test]
    fn one_per_prefix_places_inside_each() {
        let parents: Vec<Prefix> = vec![
            "10.1.0.0/16".parse().unwrap(),
            "10.2.0.0/16".parse().unwrap(),
        ];
        let sensors = one_per_prefix(&parents, &mut rng());
        assert_eq!(sensors.len(), 2);
        for (parent, sensor) in parents.iter().zip(&sensors) {
            assert!(parent.contains_prefix(*sensor), "{sensor} outside {parent}");
            assert_eq!(sensor.len(), 24);
        }
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn one_per_prefix_rejects_tiny_parents() {
        let parents: Vec<Prefix> = vec!["10.1.2.0/25".parse().unwrap()];
        let _ = one_per_prefix(&parents, &mut rng());
    }

    #[test]
    fn top_slash8_placement_lands_in_populated_space() {
        // population: heavy in 57/8, light in 90/8
        let mut pop = Vec::new();
        for i in 0..1000u32 {
            pop.push(Ip::new(0x3900_0000 + i * 97));
        }
        for i in 0..10u32 {
            pop.push(Ip::new(0x5a00_0000 + i));
        }
        let sensors = inside_top_slash8s(&pop, 1, 50, &mut rng());
        assert_eq!(sensors.len(), 50);
        for s in &sensors {
            assert_eq!(s.base().octets()[0], 57, "{s} outside top /8");
        }
    }

    #[test]
    fn inside_192_deployment_is_255_public_slash16s() {
        let sensors = inside_192_per_slash16(&mut rng());
        assert_eq!(sensors.len(), 255);
        let mut slash16s = BTreeSet::new();
        for s in &sensors {
            assert_eq!(s.base().octets()[0], 192);
            assert_ne!(s.base().octets()[1], 168, "sensor in private /16");
            slash16s.insert(s.base().octets()[1]);
        }
        assert_eq!(slash16s.len(), 255, "one sensor per public /16");
    }

    #[test]
    fn placements_are_deterministic_per_seed() {
        let a = random_slash24s(50, &[], &mut StdRng::seed_from_u64(7));
        let b = random_slash24s(50, &[], &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
