//! Fast destination→block lookup over disjoint prefixes.

use hotspots_ipspace::{Ip, Prefix};

/// An immutable index over disjoint prefixes supporting O(log n)
/// "which block contains this address" queries — the per-probe hot path
/// of every telescope.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::Ip;
/// use hotspots_telescope::BlockIndex;
///
/// let idx = BlockIndex::new(vec![
///     "10.0.0.0/24".parse().unwrap(),
///     "10.0.2.0/24".parse().unwrap(),
/// ]);
/// assert_eq!(idx.find(Ip::from_octets(10, 0, 2, 9)), Some(1));
/// assert_eq!(idx.find(Ip::from_octets(10, 0, 1, 0)), None);
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockIndex {
    /// (start, end-inclusive, original position), sorted by start.
    spans: Vec<(u32, u32, u32)>,
}

impl BlockIndex {
    /// Builds an index. Block order is preserved: `find` returns positions
    /// into the original `blocks` vector.
    ///
    /// # Panics
    ///
    /// Panics if any two blocks overlap.
    pub fn new(blocks: Vec<Prefix>) -> BlockIndex {
        let mut spans: Vec<(u32, u32, u32)> = blocks
            .iter()
            .enumerate()
            .map(|(i, p)| {
                (
                    p.base().value(),
                    p.last_ip().value(),
                    u32::try_from(i).expect("fewer than 2^32 blocks"), // hotspots-lint: allow(panic-path) reason="deployments are bounded far below 2^32 blocks"
                )
            })
            .collect();
        spans.sort_unstable_by_key(|s| s.0);
        for w in spans.windows(2) {
            assert!(
                w[0].1 < w[1].0,
                "blocks {} and {} overlap",
                blocks[w[0].2 as usize],
                blocks[w[1].2 as usize]
            );
        }
        BlockIndex { spans }
    }

    /// Returns the original position of the block containing `ip`, if any.
    #[inline]
    pub fn find(&self, ip: Ip) -> Option<usize> {
        let v = ip.value();
        let i = self.spans.partition_point(|s| s.0 <= v);
        if i == 0 {
            return None;
        }
        let (_, end, pos) = self.spans[i - 1];
        (v <= end).then_some(pos as usize)
    }

    /// Number of indexed blocks.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Returns `true` if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn find_hits_and_misses() {
        let idx = BlockIndex::new(vec![p("192.0.2.0/24"), p("10.0.0.0/8"), p("198.18.0.0/15")]);
        assert_eq!(idx.find(Ip::from_octets(10, 200, 0, 1)), Some(1));
        assert_eq!(idx.find(Ip::from_octets(192, 0, 2, 255)), Some(0));
        assert_eq!(idx.find(Ip::from_octets(198, 19, 255, 255)), Some(2));
        assert_eq!(idx.find(Ip::from_octets(198, 20, 0, 0)), None);
        assert_eq!(idx.find(Ip::MIN), None);
        assert_eq!(idx.find(Ip::MAX), None);
    }

    #[test]
    fn empty_index_finds_nothing() {
        let idx = BlockIndex::new(vec![]);
        assert!(idx.is_empty());
        assert_eq!(idx.find(Ip::from_octets(1, 2, 3, 4)), None);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_blocks_rejected() {
        let _ = BlockIndex::new(vec![p("10.0.0.0/8"), p("10.255.0.0/16")]);
    }

    #[test]
    fn boundaries_are_inclusive() {
        let idx = BlockIndex::new(vec![p("10.0.0.0/24")]);
        assert_eq!(idx.find(Ip::from_octets(10, 0, 0, 0)), Some(0));
        assert_eq!(idx.find(Ip::from_octets(10, 0, 0, 255)), Some(0));
        assert_eq!(idx.find(Ip::from_octets(10, 0, 1, 0)), None);
        assert_eq!(idx.find(Ip::from_octets(9, 255, 255, 255)), None);
    }

    proptest! {
        #[test]
        fn agrees_with_linear_scan(v in any::<u32>()) {
            let blocks = vec![p("10.0.0.0/8"), p("131.107.0.0/20"), p("192.40.16.0/22"), p("96.0.0.0/8")];
            let idx = BlockIndex::new(blocks.clone());
            let ip = Ip::new(v);
            let linear = blocks.iter().position(|b| b.contains(ip));
            prop_assert_eq!(idx.find(ip), linear);
        }
    }
}
