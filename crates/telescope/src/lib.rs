//! Darknet telescope substrate.
//!
//! The paper's measurements come from the Internet Motion Sensor: blocks
//! of unused address space where *any* arriving packet is evidence of
//! misconfiguration, backscatter, or scanning. This crate models:
//!
//! * [`Observatory`] — a set of labelled darknet blocks recording, per
//!   destination /24, the set of unique source addresses seen (the exact
//!   aggregation behind the paper's Figures 1, 2, 3 and 4),
//! * [`DetectorField`] — large fields of small threshold sensors ("alert
//!   after *n* worm payloads"), plus quorum logic over them (the Figure 5
//!   detection experiments),
//! * [`placement`] — the three sensor-placement strategies compared in
//!   Figure 5(c).
//!
//! # Examples
//!
//! ```
//! use hotspots_ipspace::Ip;
//! use hotspots_telescope::Observatory;
//!
//! let mut obs = Observatory::ims();
//! // A probe into the M block is recorded; a probe elsewhere is not.
//! assert!(obs.observe(0.0, Ip::from_octets(7, 7, 7, 7), Ip::from_octets(192, 40, 17, 1)).is_some());
//! assert!(obs.observe(0.0, Ip::from_octets(7, 7, 7, 7), Ip::from_octets(198, 18, 0, 1)).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod detector;
mod index;
mod observatory;
pub mod placement;

pub use detector::{DetectorField, QuorumPolicy, SensorMode};
pub use index::BlockIndex;
pub use observatory::{Observatory, SensorLog};
