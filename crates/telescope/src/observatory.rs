//! Labelled darknet blocks with unique-source recording.

use std::collections::{BTreeMap, BTreeSet};

use hotspots_ipspace::{ims_deployment, AddressBlock, Bucket24, Ip};
use hotspots_stats::CountHistogram;

use crate::index::BlockIndex;

/// What one darknet block has seen: packet counts, unique sources, and
/// unique sources per destination /24 — the aggregation behind the
/// paper's measurement figures.
#[derive(Debug, Clone, Default)]
pub struct SensorLog {
    packets: u64,
    packets_by_source: BTreeMap<Ip, u64>,
    sources_by_bucket: BTreeMap<Bucket24, BTreeSet<Ip>>,
    first_packet_time: Option<f64>,
}

impl SensorLog {
    /// Total packets observed.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Number of distinct source addresses observed.
    pub fn unique_source_count(&self) -> usize {
        self.packets_by_source.len()
    }

    /// Returns `true` if `src` has been observed at this sensor.
    pub fn saw_source(&self, src: Ip) -> bool {
        self.packets_by_source.contains_key(&src)
    }

    /// Packets observed from `src` (0 if never seen).
    pub fn packets_from(&self, src: Ip) -> u64 {
        self.packets_by_source.get(&src).copied().unwrap_or(0)
    }

    /// The `k` loudest sources by packet count, descending (ties broken
    /// by address for determinism). A short-cycle Slammer instance shows
    /// up here as a single source responsible for an outsized share —
    /// the paper's "looks like a targeted DoS".
    pub fn top_talkers(&self, k: usize) -> Vec<(Ip, u64)> {
        let mut v: Vec<(Ip, u64)> = self
            .packets_by_source
            .iter()
            .map(|(&ip, &c)| (ip, c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Simulation time of the first packet, if any.
    pub fn first_packet_time(&self) -> Option<f64> {
        self.first_packet_time
    }

    /// The figure-style histogram: unique source count per destination
    /// /24 within the block. Only /24s that saw traffic appear; use
    /// [`Observatory::sources_by_bucket24_over`] for zero-filled output.
    pub fn sources_by_bucket24(&self) -> CountHistogram<Bucket24> {
        let mut h = CountHistogram::new();
        for (bucket, sources) in &self.sources_by_bucket {
            h.record_n(*bucket, sources.len() as u64);
        }
        h
    }

    fn record(&mut self, time: f64, src: Ip, dst: Ip) {
        self.packets += 1;
        self.first_packet_time.get_or_insert(time);
        *self.packets_by_source.entry(src).or_insert(0) += 1;
        self.sources_by_bucket
            .entry(dst.bucket24())
            .or_default()
            .insert(src);
    }
}

/// A deployment of labelled darknet blocks (an IMS-style telescope).
///
/// Every probe the simulator delivers to unused space is offered to the
/// observatory; probes landing inside a block are logged.
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::{AddressBlock, Ip};
/// use hotspots_telescope::Observatory;
///
/// let mut obs = Observatory::new(vec![AddressBlock::new(
///     "X",
///     "203.0.113.0/24".parse().unwrap(),
/// )]);
/// obs.observe(1.5, Ip::from_octets(5, 5, 5, 5), Ip::from_octets(203, 0, 113, 77));
/// let log = obs.log_by_label("X").unwrap();
/// assert_eq!(log.unique_source_count(), 1);
/// assert_eq!(log.first_packet_time(), Some(1.5));
/// ```
#[derive(Debug)]
pub struct Observatory {
    blocks: Vec<AddressBlock>,
    index: BlockIndex,
    logs: Vec<SensorLog>,
}

impl Observatory {
    /// Creates an observatory over the given (disjoint) blocks.
    ///
    /// # Panics
    ///
    /// Panics if blocks overlap.
    pub fn new(blocks: Vec<AddressBlock>) -> Observatory {
        let index = BlockIndex::new(blocks.iter().map(|b| b.prefix()).collect());
        let logs = blocks.iter().map(|_| SensorLog::default()).collect();
        Observatory {
            blocks,
            index,
            logs,
        }
    }

    /// The synthetic eleven-block IMS deployment
    /// ([`hotspots_ipspace::ims_deployment`]).
    pub fn ims() -> Observatory {
        Observatory::new(ims_deployment())
    }

    /// The deployed blocks.
    pub fn blocks(&self) -> &[AddressBlock] {
        &self.blocks
    }

    /// Which block (by position) monitors `dst`, if any.
    #[inline]
    pub fn block_for(&self, dst: Ip) -> Option<usize> {
        self.index.find(dst)
    }

    /// Offers a probe to the telescope. Returns the index of the block
    /// that recorded it, or `None` if the destination is not monitored.
    #[inline]
    pub fn observe(&mut self, time: f64, src: Ip, dst: Ip) -> Option<usize> {
        let idx = self.index.find(dst)?;
        self.logs[idx].record(time, src, dst);
        Some(idx)
    }

    /// The log of block `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn log(&self, idx: usize) -> &SensorLog {
        &self.logs[idx]
    }

    /// The log of the block with the given label, if present.
    pub fn log_by_label(&self, label: &str) -> Option<&SensorLog> {
        let idx = self.blocks.iter().position(|b| b.label() == label)?;
        Some(&self.logs[idx])
    }

    /// Iterates `(block, log)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&AddressBlock, &SensorLog)> {
        self.blocks.iter().zip(self.logs.iter())
    }

    /// The cross-deployment figure histogram: unique sources per
    /// destination /24, zero-filled over every /24 the deployment
    /// monitors. This is exactly the x-axis/y-axis of Figures 1, 2 and 4.
    pub fn sources_by_bucket24_over(&self) -> Vec<(Bucket24, u64)> {
        let mut out = Vec::new();
        for (block, log) in self.iter() {
            let hist = log.sources_by_bucket24();
            for sub in block.prefix().subnets(24.max(block.prefix().len())) {
                let bucket = Bucket24::of(sub.base());
                out.push((bucket, hist.count(&bucket)));
            }
        }
        out.sort_by_key(|(b, _)| *b);
        out
    }

    /// Per-block unique-source totals, labelled — the compact summary the
    /// paper quotes ("the H block shows almost 8000 fewer Slammer
    /// sources...").
    pub fn unique_sources_by_block(&self) -> Vec<(String, u64)> {
        self.iter()
            .map(|(b, l)| (b.label().to_owned(), l.unique_source_count() as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(label: &str, prefix: &str) -> AddressBlock {
        AddressBlock::new(label, prefix.parse().unwrap())
    }

    #[test]
    fn observe_routes_to_correct_block() {
        let mut obs = Observatory::new(vec![block("A", "10.0.0.0/24"), block("B", "10.0.1.0/24")]);
        assert_eq!(
            obs.observe(
                0.0,
                Ip::from_octets(1, 1, 1, 1),
                Ip::from_octets(10, 0, 1, 7)
            ),
            Some(1)
        );
        assert_eq!(obs.log(0).packets(), 0);
        assert_eq!(obs.log(1).packets(), 1);
    }

    #[test]
    fn unique_sources_deduplicate() {
        let mut obs = Observatory::new(vec![block("A", "10.0.0.0/24")]);
        let src = Ip::from_octets(9, 9, 9, 9);
        for d in 0..10u8 {
            obs.observe(f64::from(d), src, Ip::from_octets(10, 0, 0, d));
        }
        assert_eq!(obs.log(0).packets(), 10);
        assert_eq!(obs.log(0).unique_source_count(), 1);
        assert!(obs.log(0).saw_source(src));
        assert_eq!(obs.log(0).first_packet_time(), Some(0.0));
    }

    #[test]
    fn per_bucket_counts_are_unique_sources_not_packets() {
        let mut obs = Observatory::new(vec![block("A", "10.0.0.0/23")]);
        let s1 = Ip::from_octets(1, 0, 0, 1);
        let s2 = Ip::from_octets(2, 0, 0, 2);
        // s1 hits the first /24 five times, s2 once; second /24 sees s2
        for i in 0..5u8 {
            obs.observe(0.0, s1, Ip::from_octets(10, 0, 0, i));
        }
        obs.observe(0.0, s2, Ip::from_octets(10, 0, 0, 200));
        obs.observe(0.0, s2, Ip::from_octets(10, 0, 1, 3));
        let hist = obs.log(0).sources_by_bucket24();
        assert_eq!(hist.count(&Bucket24::of(Ip::from_octets(10, 0, 0, 0))), 2);
        assert_eq!(hist.count(&Bucket24::of(Ip::from_octets(10, 0, 1, 0))), 1);
    }

    #[test]
    fn zero_filled_figure_output_covers_whole_deployment() {
        let mut obs = Observatory::new(vec![block("A", "10.0.0.0/22")]);
        obs.observe(
            0.0,
            Ip::from_octets(1, 1, 1, 1),
            Ip::from_octets(10, 0, 2, 2),
        );
        let rows = obs.sources_by_bucket24_over();
        assert_eq!(rows.len(), 4); // a /22 is four /24s
        let nonzero: Vec<_> = rows.iter().filter(|(_, c)| *c > 0).collect();
        assert_eq!(nonzero.len(), 1);
        assert_eq!(nonzero[0].0.to_string(), "10.0.2.0/24");
    }

    #[test]
    fn top_talkers_rank_by_packet_count() {
        let mut obs = Observatory::new(vec![block("A", "10.0.0.0/24")]);
        let loud = Ip::from_octets(6, 6, 6, 6);
        let quiet = Ip::from_octets(7, 7, 7, 7);
        for i in 0..9u8 {
            obs.observe(0.0, loud, Ip::from_octets(10, 0, 0, i));
        }
        obs.observe(0.0, quiet, Ip::from_octets(10, 0, 0, 99));
        let log = obs.log(0);
        assert_eq!(log.packets_from(loud), 9);
        assert_eq!(log.packets_from(quiet), 1);
        assert_eq!(log.packets_from(Ip::MIN), 0);
        let talkers = log.top_talkers(5);
        assert_eq!(talkers, vec![(loud, 9), (quiet, 1)]);
        assert_eq!(log.top_talkers(1).len(), 1);
    }

    #[test]
    fn ims_observatory_has_eleven_blocks() {
        let obs = Observatory::ims();
        assert_eq!(obs.blocks().len(), 11);
        assert!(obs.log_by_label("Z").is_some());
        assert!(obs.log_by_label("Q").is_none());
    }

    #[test]
    fn labels_resolve_to_logs() {
        let mut obs = Observatory::new(vec![block("M", "192.40.16.0/22")]);
        obs.observe(
            3.0,
            Ip::from_octets(4, 4, 4, 4),
            Ip::from_octets(192, 40, 17, 3),
        );
        assert_eq!(obs.log_by_label("M").unwrap().unique_source_count(), 1);
        let by_block = obs.unique_sources_by_block();
        assert_eq!(by_block, vec![("M".to_owned(), 1)]);
    }
}
