//! Threshold sensors and quorum detection (the Figure 5 machinery).

use hotspots_ipspace::{Ip, Prefix};
use hotspots_stats::TimeSeries;

use crate::index::BlockIndex;

/// How a darknet sensor interacts with arriving connections.
///
/// The IMS sensors behind the paper's data were *active*: they answered
/// TCP SYNs with SYN-ACKs to elicit the first data payload, which is what
/// made TCP threats identifiable. A *passive* sensor records packets but
/// never sees a TCP payload — it can only identify threats whose first
/// packet already carries the payload (UDP worms like Slammer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SensorMode {
    /// SYN-ACK responder: payloads of both TCP and UDP threats are
    /// captured and identifiable.
    Active,
    /// Pure packet capture: only first-packet (UDP) payloads are
    /// identifiable.
    Passive,
}

/// A global alerting policy over a field of sensors: alert when at least
/// `quorum` fraction of sensors have individually alerted.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QuorumPolicy {
    /// Required alerted fraction in `(0.0, 1.0]`.
    pub quorum: f64,
}

impl QuorumPolicy {
    /// Creates a policy. Returns `None` unless `0 < quorum <= 1`.
    pub fn new(quorum: f64) -> Option<QuorumPolicy> {
        (quorum > 0.0 && quorum <= 1.0).then_some(QuorumPolicy { quorum })
    }
}

/// A field of threshold detectors: many small sensor blocks (typically
/// /24s), each of which raises a local alert after observing
/// `threshold` worm payloads — the model used by the paper's Figure 5
/// detection experiments ("each sensor was set to generate an alert after
/// observing 5 threat payloads", no false positives).
///
/// # Examples
///
/// ```
/// use hotspots_ipspace::Ip;
/// use hotspots_telescope::DetectorField;
///
/// let mut field = DetectorField::new(
///     vec!["203.0.113.0/24".parse().unwrap()],
///     2,
/// );
/// field.observe(1.0, Ip::from_octets(203, 0, 113, 5));
/// assert_eq!(field.alerted(), 0);
/// field.observe(2.0, Ip::from_octets(203, 0, 113, 6));
/// assert_eq!(field.alerted(), 1);
/// assert_eq!(field.alert_time(0), Some(2.0));
/// ```
#[derive(Debug, Clone)]
pub struct DetectorField {
    blocks: Vec<Prefix>,
    index: BlockIndex,
    threshold: u64,
    mode: SensorMode,
    counts: Vec<u64>,
    alert_times: Vec<Option<f64>>,
    alerted: usize,
}

impl DetectorField {
    /// Creates a field of sensors with the given per-sensor alert
    /// threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0` or blocks overlap.
    pub fn new(blocks: Vec<Prefix>, threshold: u64) -> DetectorField {
        DetectorField::with_mode(blocks, threshold, SensorMode::Active)
    }

    /// Creates a field with an explicit [`SensorMode`] (passive fields
    /// cannot identify TCP threat payloads; see
    /// [`DetectorField::observe_packet`]).
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0` or blocks overlap.
    pub fn with_mode(blocks: Vec<Prefix>, threshold: u64, mode: SensorMode) -> DetectorField {
        assert!(threshold > 0, "alert threshold must be positive");
        let index = BlockIndex::new(blocks.clone());
        let n = blocks.len();
        DetectorField {
            blocks,
            index,
            threshold,
            mode,
            counts: vec![0; n],
            alert_times: vec![None; n],
            alerted: 0,
        }
    }

    /// The field's sensor mode.
    pub fn mode(&self) -> SensorMode {
        self.mode
    }

    /// The sensor blocks.
    pub fn blocks(&self) -> &[Prefix] {
        &self.blocks
    }

    /// The per-sensor alert threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if the field has no sensors.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Offers one delivered worm payload to the field (the payload is
    /// assumed identifiable — use [`DetectorField::observe_packet`] when
    /// payload visibility depends on the transport). Returns the sensor
    /// index if a sensor saw it.
    #[inline]
    pub fn observe(&mut self, time: f64, dst: Ip) -> Option<usize> {
        self.observe_packet(time, dst, true)
    }

    /// Offers one delivered probe whose payload is visible in the capture
    /// iff `first_packet_payload` (true for UDP worms; false for a bare
    /// TCP SYN). Passive sensors only count identifiable payloads toward
    /// their threshold; active sensors elicit the payload themselves and
    /// count everything.
    #[inline]
    pub fn observe_packet(
        &mut self,
        time: f64,
        dst: Ip,
        first_packet_payload: bool,
    ) -> Option<usize> {
        let idx = self.index.find(dst)?;
        if first_packet_payload || self.mode == SensorMode::Active {
            self.counts[idx] += 1;
            if self.counts[idx] == self.threshold {
                self.alert_times[idx] = Some(time);
                self.alerted += 1;
            }
        }
        Some(idx)
    }

    /// Number of sensors that have alerted.
    pub fn alerted(&self) -> usize {
        self.alerted
    }

    /// Fraction of sensors that have alerted.
    pub fn fraction_alerted(&self) -> f64 {
        if self.blocks.is_empty() {
            0.0
        } else {
            self.alerted as f64 / self.blocks.len() as f64
        }
    }

    /// When sensor `idx` alerted, if it has.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn alert_time(&self, idx: usize) -> Option<f64> {
        self.alert_times[idx]
    }

    /// Payload count at sensor `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Whether the global quorum policy has fired.
    pub fn quorum_reached(&self, policy: QuorumPolicy) -> bool {
        self.fraction_alerted() >= policy.quorum
    }

    /// Builds the Figure 5(b)/(c)-style "% of sensors alerting vs time"
    /// curve from the recorded alert times. The series is defined on the
    /// sorted alert times; its value after the last alert is the final
    /// alerted fraction.
    pub fn alert_curve(&self, name: impl Into<String>) -> TimeSeries {
        let mut times: Vec<f64> = self.alert_times.iter().flatten().copied().collect();
        times.sort_by(f64::total_cmp);
        let mut ts = TimeSeries::new(name);
        let n = self.blocks.len() as f64;
        for (i, t) in times.iter().enumerate() {
            ts.push(*t, (i + 1) as f64 / n);
        }
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = DetectorField::new(vec![p("10.0.0.0/24")], 0);
    }

    #[test]
    fn alert_fires_exactly_at_threshold() {
        let mut f = DetectorField::new(vec![p("10.0.0.0/24")], 5);
        for i in 0..4u8 {
            f.observe(f64::from(i), Ip::from_octets(10, 0, 0, i));
            assert_eq!(f.alerted(), 0);
        }
        f.observe(10.0, Ip::from_octets(10, 0, 0, 99));
        assert_eq!(f.alerted(), 1);
        assert_eq!(f.alert_time(0), Some(10.0));
        // further payloads don't re-alert
        f.observe(11.0, Ip::from_octets(10, 0, 0, 100));
        assert_eq!(f.alerted(), 1);
        assert_eq!(f.count(0), 6);
    }

    #[test]
    fn misses_do_not_count() {
        let mut f = DetectorField::new(vec![p("10.0.0.0/24")], 1);
        assert_eq!(f.observe(0.0, Ip::from_octets(11, 0, 0, 1)), None);
        assert_eq!(f.alerted(), 0);
    }

    #[test]
    fn fraction_and_quorum() {
        let mut f = DetectorField::new(vec![p("10.0.0.0/24"), p("10.0.1.0/24")], 1);
        let policy = QuorumPolicy::new(0.75).unwrap();
        assert!(!f.quorum_reached(policy));
        f.observe(1.0, Ip::from_octets(10, 0, 0, 1));
        assert_eq!(f.fraction_alerted(), 0.5);
        assert!(!f.quorum_reached(policy));
        f.observe(2.0, Ip::from_octets(10, 0, 1, 1));
        assert_eq!(f.fraction_alerted(), 1.0);
        assert!(f.quorum_reached(policy));
    }

    #[test]
    fn quorum_policy_validation() {
        assert!(QuorumPolicy::new(0.0).is_none());
        assert!(QuorumPolicy::new(1.1).is_none());
        assert!(QuorumPolicy::new(1.0).is_some());
    }

    #[test]
    fn alert_curve_is_monotone_step() {
        let mut f = DetectorField::new(
            vec![
                p("10.0.0.0/24"),
                p("10.0.1.0/24"),
                p("10.0.2.0/24"),
                p("10.0.3.0/24"),
            ],
            1,
        );
        f.observe(5.0, Ip::from_octets(10, 0, 1, 1));
        f.observe(2.0, Ip::from_octets(10, 0, 0, 1));
        f.observe(9.0, Ip::from_octets(10, 0, 3, 1));
        let curve = f.alert_curve("alerts");
        let pts: Vec<(f64, f64)> = curve.iter().collect();
        assert_eq!(pts, vec![(2.0, 0.25), (5.0, 0.5), (9.0, 0.75)]);
        assert_eq!(curve.time_to_reach(0.5), Some(5.0));
        assert_eq!(curve.time_to_reach(0.9), None);
    }

    #[test]
    fn passive_sensors_miss_tcp_payloads() {
        // A passive field never identifies a TCP worm (SYN only, no
        // payload), but identifies UDP worms normally.
        let mut passive = DetectorField::with_mode(vec![p("10.0.0.0/24")], 2, SensorMode::Passive);
        for i in 0..10u8 {
            // TCP worm: first packet carries no payload
            passive.observe_packet(f64::from(i), Ip::from_octets(10, 0, 0, i), false);
        }
        assert_eq!(
            passive.alerted(),
            0,
            "passive field identified TCP payloads"
        );
        assert_eq!(passive.count(0), 0);
        // UDP worm: payload in the first packet
        passive.observe_packet(20.0, Ip::from_octets(10, 0, 0, 99), true);
        passive.observe_packet(21.0, Ip::from_octets(10, 0, 0, 98), true);
        assert_eq!(passive.alerted(), 1);
    }

    #[test]
    fn active_sensors_elicit_tcp_payloads() {
        // The IMS design decision: answering SYNs makes TCP worms
        // identifiable.
        let mut active = DetectorField::with_mode(vec![p("10.0.0.0/24")], 2, SensorMode::Active);
        active.observe_packet(1.0, Ip::from_octets(10, 0, 0, 1), false);
        active.observe_packet(2.0, Ip::from_octets(10, 0, 0, 2), false);
        assert_eq!(active.alerted(), 1);
        assert_eq!(active.mode(), SensorMode::Active);
    }

    #[test]
    fn default_field_is_active() {
        let f = DetectorField::new(vec![p("10.0.0.0/24")], 1);
        assert_eq!(f.mode(), SensorMode::Active);
    }

    #[test]
    fn empty_field_reports_zero_fraction() {
        let f = DetectorField::new(vec![], 3);
        assert!(f.is_empty());
        assert_eq!(f.fraction_alerted(), 0.0);
    }
}
