//! The rule families and their token-level checks.
//!
//! Each rule protects one invariant the reproduction's claims rest on
//! (see `DESIGN.md` §6):
//!
//! | id | name                  | invariant                                   |
//! |----|-----------------------|---------------------------------------------|
//! | D1 | `no-clock`            | zero-cost-when-off: no clock reads in the   |
//! |    |                       | default hot loop                            |
//! | D2 | `unordered-iteration` | stable-order reports: no `HashMap`/`HashSet`|
//! |    |                       | in code that feeds rendered/JSONL output    |
//! | D3 | `ambient-entropy`     | full randomness accounting: all RNG flows   |
//! |    |                       | from id-keyed SplitMix64 streams            |
//! | D4 | `forbid-unsafe`       | every library crate forbids `unsafe`        |
//! | D5 | `panic-path`          | library code fails through `Result`, not    |
//! |    |                       | `unwrap`/`expect`/`panic!`                  |

use std::fmt;
use std::path::Path;

use crate::lexer::{Lexed, Token, TokenKind};
use crate::regions::Regions;

/// Stable rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    NoClock,
    UnorderedIteration,
    AmbientEntropy,
    ForbidUnsafe,
    PanicPath,
    /// R6: interprocedural panic reachability / certification checks.
    PanicReachability,
    /// R7: SplitMix64 domain-separation discipline for RNG streams.
    RngStreamDiscipline,
    /// R8: executor race rules (shard isolation, channel pairing).
    ExecutorIsolation,
    /// R9: feature-gate consistency for telemetry-gated items.
    GateConsistency,
    /// A malformed `hotspots-lint:` pragma (never waivable).
    BadPragma,
}

impl RuleId {
    /// All enforceable rules, in report order.
    pub const ALL: [RuleId; 10] = [
        RuleId::NoClock,
        RuleId::UnorderedIteration,
        RuleId::AmbientEntropy,
        RuleId::ForbidUnsafe,
        RuleId::PanicPath,
        RuleId::PanicReachability,
        RuleId::RngStreamDiscipline,
        RuleId::ExecutorIsolation,
        RuleId::GateConsistency,
        RuleId::BadPragma,
    ];

    /// Short id (`D1`…`D5`, `R6`…`R9`).
    pub fn id(self) -> &'static str {
        match self {
            RuleId::NoClock => "D1",
            RuleId::UnorderedIteration => "D2",
            RuleId::AmbientEntropy => "D3",
            RuleId::ForbidUnsafe => "D4",
            RuleId::PanicPath => "D5",
            RuleId::PanicReachability => "R6",
            RuleId::RngStreamDiscipline => "R7",
            RuleId::ExecutorIsolation => "R8",
            RuleId::GateConsistency => "R9",
            RuleId::BadPragma => "D0",
        }
    }

    /// Long name (`no-clock`…`gate-consistency`).
    pub fn name(self) -> &'static str {
        match self {
            RuleId::NoClock => "no-clock",
            RuleId::UnorderedIteration => "unordered-iteration",
            RuleId::AmbientEntropy => "ambient-entropy",
            RuleId::ForbidUnsafe => "forbid-unsafe",
            RuleId::PanicPath => "panic-path",
            RuleId::PanicReachability => "panic-reachability",
            RuleId::RngStreamDiscipline => "rng-stream-discipline",
            RuleId::ExecutorIsolation => "executor-isolation",
            RuleId::GateConsistency => "gate-consistency",
            RuleId::BadPragma => "bad-pragma",
        }
    }

    /// Parses an id (`d1`) or name (`no-clock`), case-insensitive.
    /// `bad-pragma` is deliberately unparseable: it cannot be waived.
    pub fn parse(s: &str) -> Option<RuleId> {
        let s = s.trim().to_ascii_lowercase();
        RuleId::ALL
            .into_iter()
            .filter(|r| *r != RuleId::BadPragma)
            .find(|r| s == r.id().to_ascii_lowercase() || s == r.name())
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.id(), self.name())
    }
}

/// The documentation record for one rule: the single source of truth
/// shared by `--explain`, the SARIF rule metadata, and the DESIGN.md §6
/// table (a test asserts each `guarantee` sentence appears verbatim in
/// DESIGN.md, so the CLI and the docs cannot drift).
#[derive(Debug, Clone, Copy)]
pub struct RuleDoc {
    pub rule: RuleId,
    /// One-sentence statement of the invariant the rule protects.
    pub guarantee: &'static str,
    /// A minimal violating snippet.
    pub example: &'static str,
    /// The waiver (or certification) form that silences it.
    pub waiver: &'static str,
}

impl RuleId {
    /// This rule's documentation record.
    pub fn doc(self) -> RuleDoc {
        // index math instead of a second match: ALL and DOCS share order
        RULE_DOCS[RuleId::ALL.iter().position(|r| *r == self).unwrap_or(0)]
    }
}

/// One entry per `RuleId::ALL` member, same order.
pub const RULE_DOCS: [RuleDoc; 10] = [
    RuleDoc {
        rule: RuleId::NoClock,
        guarantee: "no clock reads in hot-path crates outside telemetry-gated regions, so the default build's hot loop never touches a timer",
        example: "let t0 = Instant::now(); // in crates/sim/src, ungated",
        waiver: "// hotspots-lint: allow(no-clock) reason=\"…\"",
    },
    RuleDoc {
        rule: RuleId::UnorderedIteration,
        guarantee: "no hash-ordered collections in report-feeding code, so JSONL reports and rendered tables are byte-stable run to run",
        example: "let m: HashMap<u32, u32> = … // in crates/experiments/src",
        waiver: "// hotspots-lint: allow(unordered-iteration) reason=\"…\"",
    },
    RuleDoc {
        rule: RuleId::AmbientEntropy,
        guarantee: "no ambient entropy anywhere (tests included), so every random draw replays from the spec seed",
        example: "let mut rng = thread_rng();",
        waiver: "// hotspots-lint: allow(ambient-entropy) reason=\"…\"",
    },
    RuleDoc {
        rule: RuleId::ForbidUnsafe,
        guarantee: "every library crate's lib.rs carries #![forbid(unsafe_code)], so memory-safety review never reopens",
        example: "a lib.rs missing the forbid attribute",
        waiver: "// hotspots-lint: allow(forbid-unsafe) reason=\"…\"",
    },
    RuleDoc {
        rule: RuleId::PanicPath,
        guarantee: "library code fails through Result, not unwrap/expect/panic!, so callers decide failure policy",
        example: "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        waiver: "// hotspots-lint: allow(panic-path) reason=\"…\" — or certify the whole fn: // hotspots-lint: certifies(panic-free) reason=\"…\"",
    },
    RuleDoc {
        rule: RuleId::PanicReachability,
        guarantee: "a fn certified panic-free must not reach an unwaived panic site through any call chain, and every certification must suppress at least one site",
        example: "// hotspots-lint: certifies(panic-free) reason=\"…\"\nfn f() { helper() } // where helper() contains a bare .unwrap()",
        waiver: "// hotspots-lint: allow(panic-reachability) reason=\"…\"",
    },
    RuleDoc {
        rule: RuleId::RngStreamDiscipline,
        guarantee: "every RNG in sim/targeting is constructed from an id-keyed stream helper and no RNG state crosses a shard boundary or hides in an Arc without re-keying",
        example: "let g = SplitMix::new(42); // literal seed, not host_seed/derive_seed",
        waiver: "// hotspots-lint: allow(rng-stream-discipline) reason=\"…\"",
    },
    RuleDoc {
        rule: RuleId::ExecutorIsolation,
        guarantee: "code reachable from drive_shard/worker_loop never mutates observable state (observers, engine flags) directly, and every channel Sender<T> has a matching Receiver<T>",
        example: "fn drive_shard(…) { observer.on_infection(…) }",
        waiver: "// hotspots-lint: allow(executor-isolation) reason=\"…\"",
    },
    RuleDoc {
        rule: RuleId::GateConsistency,
        guarantee: "items defined under #[cfg(feature = \"telemetry\")] are referenced only from equally gated code, so every feature combination compiles",
        example: "#[cfg(feature = \"telemetry\")] fn phases() {} … fn report() { phases() } // ungated call",
        waiver: "// hotspots-lint: allow(gate-consistency) reason=\"…\"",
    },
    RuleDoc {
        rule: RuleId::BadPragma,
        guarantee: "every waiver pragma is well-formed and carries a reason; a malformed pragma is itself a violation and can never waive anything",
        example: "// hotspots-lint: allow(panic-path)   (missing reason)",
        waiver: "not waivable — fix the pragma",
    },
];

/// How a file participates in the workspace — decides which rules
/// apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// `src/**` of a crate, excluding `src/bin` and `src/main.rs`.
    Lib,
    /// Binary sources: `src/bin/**`, `src/main.rs`.
    Bin,
    /// `tests/**`, `benches/**`, `examples/**`.
    Support,
}

/// Per-file context the rules see.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The crate the file belongs to (`sim`, `ipspace`, …; the root
    /// package is `"."`).
    pub crate_name: String,
    pub role: FileRole,
}

/// Crates whose default build is the measured hot path: a clock read
/// here (outside telemetry-gated regions) breaks zero-cost-when-off.
pub const HOT_PATH_CRATES: [&str; 5] = ["sim", "targeting", "netmodel", "ipspace", "prng"];

/// Files/directories whose output feeds reports, JSONL, or rendered
/// tables — iteration order there must be deterministic, so hash-based
/// collections are banned in favour of `BTreeMap`/sorted vectors.
pub const REPORT_PATHS: [&str; 5] = [
    "crates/experiments/src/",
    "crates/telemetry/src/",
    "crates/telescope/src/",
    "crates/scenario/src/run.rs",
    "crates/sim/src/observers.rs",
];

/// Identifiers that smuggle ambient (unseeded, unaccounted) entropy.
const ENTROPY_IDENTS: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "OsRng",
    "ThreadRng",
    "RandomState",
];

/// One violation.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: RuleId,
    pub path: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

impl FileCtx {
    fn in_report_path(&self) -> bool {
        REPORT_PATHS.iter().any(|p| self.path.starts_with(p))
    }

    fn in_hot_crate(&self) -> bool {
        HOT_PATH_CRATES.contains(&self.crate_name.as_str())
    }
}

/// Runs every applicable rule over one lexed file. `is_lib_root` marks
/// `src/lib.rs` (rule D4's anchor). Pragmas are applied by the caller.
pub fn check_file(
    ctx: &FileCtx,
    lexed: &Lexed,
    regions: &Regions,
    is_lib_root: bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &lexed.tokens;

    // D1 — no clock reads in hot-path crates outside telemetry gates.
    if ctx.in_hot_crate() && ctx.role == FileRole::Lib {
        for (i, t) in toks.iter().enumerate() {
            if regions.in_telemetry(t.line) || regions.in_test(t.line) {
                continue;
            }
            let clock =
                (t.is_ident("Instant") && path_call(toks, i, "now")) || t.is_ident("SystemTime");
            if clock {
                out.push(Diagnostic {
                    rule: RuleId::NoClock,
                    path: ctx.path.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` in hot-path crate `{}` outside a `#[cfg(feature = \"telemetry\")]` \
                         region breaks the zero-cost-when-off guarantee",
                        if t.is_ident("SystemTime") {
                            "SystemTime"
                        } else {
                            "Instant::now"
                        },
                        ctx.crate_name
                    ),
                });
            }
        }
    }

    // D2 — no hash-ordered collections in report-feeding code.
    if ctx.in_report_path() && ctx.role == FileRole::Lib {
        for t in toks {
            if regions.in_test(t.line) {
                continue;
            }
            if t.is_ident("HashMap") || t.is_ident("HashSet") {
                out.push(Diagnostic {
                    rule: RuleId::UnorderedIteration,
                    path: ctx.path.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` in report-feeding code: iteration order is nondeterministic, \
                         use `BTreeMap`/`BTreeSet` or sort before output",
                        t.text
                    ),
                });
            }
        }
    }

    // D3 — no ambient entropy anywhere (tests included: a test seeded
    // from the environment cannot pin determinism).
    for t in toks {
        if t.kind == TokenKind::Ident && ENTROPY_IDENTS.contains(&t.text.as_str()) {
            out.push(Diagnostic {
                rule: RuleId::AmbientEntropy,
                path: ctx.path.clone(),
                line: t.line,
                message: format!(
                    "`{}` draws ambient entropy; all randomness must flow from the id-keyed \
                     SplitMix64 streams (seeded `StdRng`/`SplitMix64`)",
                    t.text
                ),
            });
        }
    }

    // D4 — library crates must forbid unsafe code at the root.
    if is_lib_root {
        let has_forbid = toks.windows(7).any(|w| {
            w[0].is_punct('#')
                && w[1].is_punct('!')
                && w[2].is_punct('[')
                && w[3].is_ident("forbid")
                && w[4].is_punct('(')
                && w[5].is_ident("unsafe_code")
                && w[6].is_punct(')')
        });
        if !has_forbid {
            out.push(Diagnostic {
                rule: RuleId::ForbidUnsafe,
                path: ctx.path.clone(),
                line: 1,
                message: format!(
                    "library crate `{}` is missing `#![forbid(unsafe_code)]` in its lib.rs",
                    ctx.crate_name
                ),
            });
        }
    }

    // D5 — no panicking escape hatches in library code.
    if ctx.role == FileRole::Lib {
        for (i, t) in toks.iter().enumerate() {
            if regions.in_test(t.line) {
                continue;
            }
            let method_call = |name: &str| {
                t.is_ident(name)
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            };
            let bang_macro =
                |name: &str| t.is_ident(name) && toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
            let hit = if method_call("unwrap") {
                Some("`.unwrap()` panics on the failure path")
            } else if method_call("expect") {
                Some("`.expect(…)` panics on the failure path")
            } else if bang_macro("panic") {
                Some("`panic!` in library code")
            } else if bang_macro("todo") || bang_macro("unimplemented") {
                Some("unimplemented code path in library code")
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(Diagnostic {
                    rule: RuleId::PanicPath,
                    path: ctx.path.clone(),
                    line: t.line,
                    message: format!(
                        "{what}; return a `Result`, handle the `None`, or waive with \
                         `// hotspots-lint: allow(panic-path) reason=\"…\"`"
                    ),
                });
            }
        }
    }

    out
}

/// True if tokens at `i` start the path-call `X::name(` (with `X` at
/// `i`): used for `Instant::now(…)`.
fn path_call(toks: &[Token], i: usize, name: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(name))
}

/// Classifies a workspace-relative path into its crate and role.
/// Returns `None` for paths the linter does not check (vendored
/// stand-ins, fixtures, generated output).
pub fn classify(rel_path: &str) -> Option<FileCtx> {
    let p = Path::new(rel_path);
    if !rel_path.ends_with(".rs") {
        return None;
    }
    // vendored dependency stand-ins are external code; fixtures are
    // deliberately violating corpora
    if rel_path.starts_with("vendor/") || rel_path.contains("/fixtures/") {
        return None;
    }
    if rel_path.starts_with("target/") {
        return None;
    }
    let (crate_name, within): (String, &str) = if let Some(rest) = rel_path.strip_prefix("crates/")
    {
        let mut parts = rest.splitn(2, '/');
        let name = parts.next()?.to_owned();
        (name, parts.next().unwrap_or(""))
    } else {
        (".".to_owned(), rel_path)
    };
    let file_name = p.file_name()?.to_str()?;
    let role = if within.starts_with("tests/")
        || within.starts_with("benches/")
        || within.starts_with("examples/")
    {
        FileRole::Support
    } else if within.starts_with("src/bin/") || within == "src/main.rs" {
        FileRole::Bin
    } else if within.starts_with("src/") {
        FileRole::Lib
    } else if file_name == "build.rs" {
        FileRole::Bin
    } else {
        FileRole::Support
    };
    Some(FileCtx {
        path: rel_path.to_owned(),
        crate_name,
        role,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::regions;

    fn check(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = classify(path).expect("classifiable");
        let lexed = lex(src);
        let regs = regions::analyze(&lexed.tokens);
        let is_lib_root = path.ends_with("src/lib.rs");
        check_file(&ctx, &lexed, &regs, is_lib_root)
    }

    #[test]
    fn classify_roles() {
        assert_eq!(
            classify("crates/sim/src/engine.rs").unwrap().role,
            FileRole::Lib
        );
        assert_eq!(
            classify("crates/experiments/src/bin/fig1.rs").unwrap().role,
            FileRole::Bin
        );
        assert_eq!(
            classify("crates/sim/tests/x.rs").unwrap().role,
            FileRole::Support
        );
        assert_eq!(classify("src/lib.rs").unwrap().crate_name, ".");
        assert!(classify("vendor/rand/src/lib.rs").is_none());
        assert!(classify("crates/lint/tests/fixtures/d1/bad.rs").is_none());
        assert!(classify("README.md").is_none());
    }

    #[test]
    fn d1_flags_ungated_clock_in_hot_crate_only() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(check("crates/sim/src/x.rs", src).len(), 1);
        // telemetry crate is not a hot-path crate: Instant is its job
        assert!(check(
            "crates/telemetry/src/metrics.rs",
            "fn f() { Instant::now(); }"
        )
        .iter()
        .all(|d| d.rule != RuleId::NoClock));
    }

    #[test]
    fn d1_respects_telemetry_gate() {
        let src = "fn f() {\n#[cfg(feature = \"telemetry\")]\nlet t = Instant::now();\n}";
        assert!(check("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn d2_flags_hash_collections_in_report_paths_only() {
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u32, u32>) {}";
        assert_eq!(check("crates/experiments/src/render.rs", src).len(), 2);
        assert!(check("crates/netmodel/src/environment.rs", src).is_empty());
    }

    #[test]
    fn d3_flags_ambient_entropy_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { let mut r = thread_rng(); }\n}";
        let diags = check("crates/stats/src/summary.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::AmbientEntropy);
    }

    #[test]
    fn d4_wants_forbid_unsafe_in_lib_root() {
        assert!(check(
            "crates/sim/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}"
        )
        .is_empty());
        let diags = check("crates/sim/src/lib.rs", "pub fn f() {}");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleId::ForbidUnsafe);
    }

    #[test]
    fn d5_flags_panics_in_lib_but_not_bins_tests() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(check("crates/stats/src/summary.rs", src).len(), 1);
        assert!(check("crates/experiments/src/bin/fig1.rs", src).is_empty());
        assert!(check("crates/stats/tests/t.rs", src).is_empty());
        let gated = "#[cfg(test)]\nmod tests { fn t() { None::<u32>.unwrap(); } }";
        assert!(check("crates/stats/src/summary.rs", gated).is_empty());
    }

    #[test]
    fn d5_distinguishes_method_calls_from_fields() {
        // unwrap_or is a different identifier; a field named expect is
        // not a call
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + s.expect }";
        assert!(check("crates/stats/src/summary.rs", src).is_empty());
    }

    #[test]
    fn string_contents_never_trip_rules() {
        let src = "pub fn f() -> &'static str { \"Instant::now HashMap thread_rng panic!\" }";
        assert!(check("crates/sim/src/x.rs", src).is_empty());
    }
}
