//! A hand-rolled item parser on top of the lexer.
//!
//! The call-graph rules (R6 `panic-reachability`, R8
//! `executor-isolation`) and the gate rule (R9 `gate-consistency`) need
//! more structure than a flat token stream: which `fn` a token belongs
//! to, where each item's body starts and ends, and which items carry a
//! `#[cfg(...)]` gate. This module recovers exactly that — fn / struct /
//! enum / trait / mod boundaries with body token spans — from the token
//! stream with a single bracket-depth pass. It is *not* a Rust parser:
//! expressions are never interpreted, and malformed input degrades to
//! fewer (never wrong-span) items. Like the lexer, it must never panic
//! on arbitrary token soup (pinned by a proptest).

use crate::lexer::Token;

/// What kind of item a definition is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Struct,
    Enum,
    Trait,
    Mod,
    Const,
    Static,
    TypeAlias,
}

/// One `fn` definition with its body span.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name (`drive_shard`).
    pub name: String,
    /// Display name with its impl/mod context (`StepPipeline::run_step`).
    pub qualified: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Last line of the item (close brace, or the `;` of a bodyless
    /// declaration).
    pub end_line: u32,
    /// Token index range `[start, end)` of the body including braces;
    /// `None` for bodyless declarations (trait methods).
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// True if `line` falls lexically inside this fn (signature to
    /// close brace).
    pub fn contains_line(&self, line: u32) -> bool {
        self.line <= line && line <= self.end_line
    }
}

/// One non-fn item definition (only the name and line matter to the
/// rules: R9 checks reference gating, R7 checks shard-payload structs).
#[derive(Debug, Clone)]
pub struct TypeItem {
    pub kind: ItemKind,
    pub name: String,
    /// Line of the introducing keyword.
    pub line: u32,
    pub end_line: u32,
    /// Token index range of the body including braces, when present
    /// (struct with named fields, enum, trait, mod).
    pub body: Option<(usize, usize)>,
}

/// Everything the parser recovered from one file.
#[derive(Debug, Default)]
pub struct ItemSet {
    pub fns: Vec<FnItem>,
    pub types: Vec<TypeItem>,
    /// Names declared by `mod <name>;` (out-of-line modules), with the
    /// declaration line — used to propagate `#[cfg]` gates to whole
    /// files.
    pub mod_decls: Vec<(String, u32)>,
}

impl ItemSet {
    /// The innermost fn whose lexical extent contains `line` (nested
    /// fns win over their enclosing fn).
    pub fn enclosing_fn(&self, line: u32) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.fns.iter().enumerate() {
            if f.contains_line(line) {
                let tighter = match best {
                    None => true,
                    Some(b) => {
                        let cur = &self.fns[b];
                        (f.end_line - f.line) < (cur.end_line - cur.line)
                    }
                };
                if tighter {
                    best = Some(i);
                }
            }
        }
        best
    }
}

/// Keywords that can never be item or call names.
pub(crate) fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "async"
            | "await"
            | "union"
    )
}

/// One entry on the scope stack while parsing.
struct Scope {
    /// Context label contributed to qualified names (impl type, mod
    /// name); empty for anonymous braces.
    label: String,
    /// Index into the pending item lists if this scope is an item body.
    fn_idx: Option<usize>,
    type_idx: Option<usize>,
    /// Token index of the opening `{`.
    open: usize,
}

/// Parses the token stream into an [`ItemSet`]. Single forward pass:
/// item keywords open pending items, brace tokens maintain a scope
/// stack, and the matching close brace finalizes each item's span.
/// Never panics; unbalanced braces simply close whatever is open at
/// EOF.
pub fn parse(tokens: &[Token]) -> ItemSet {
    let mut out = ItemSet::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut i = 0usize;

    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('#') {
            // skip attributes wholesale so `#[derive(...)]` contents
            // never look like items
            i = skip_attribute(tokens, i);
            continue;
        }
        if t.is_punct('{') {
            scopes.push(Scope {
                label: String::new(),
                fn_idx: None,
                type_idx: None,
                open: i,
            });
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            if let Some(s) = scopes.pop() {
                close_scope(&mut out, s, i, tokens);
            }
            i += 1;
            continue;
        }
        if t.is_ident("fn") {
            i = parse_fn(tokens, i, &mut out, &mut scopes);
            continue;
        }
        if t.is_ident("struct") || t.is_ident("enum") || t.is_ident("trait") || t.is_ident("union")
        {
            let kind = match t.text.as_str() {
                "struct" | "union" => ItemKind::Struct,
                "enum" => ItemKind::Enum,
                _ => ItemKind::Trait,
            };
            i = parse_type_item(tokens, i, kind, &mut out, &mut scopes);
            continue;
        }
        if t.is_ident("mod") {
            i = parse_mod(tokens, i, &mut out, &mut scopes);
            continue;
        }
        if t.is_ident("impl") {
            i = parse_impl(tokens, i, &mut scopes);
            continue;
        }
        if t.is_ident("const") || t.is_ident("static") || t.is_ident("type") {
            // `const NAME: T = ...;` / `static NAME` / `type NAME =`;
            // skip `const fn` (handled by the fn arm on the next token)
            // and `impl Trait for` type positions by requiring an
            // ident immediately after.
            if let Some(n) = tokens.get(i + 1) {
                if n.kind == crate::lexer::TokenKind::Ident && !is_keyword(&n.text) {
                    let kind = match t.text.as_str() {
                        "const" => ItemKind::Const,
                        "static" => ItemKind::Static,
                        _ => ItemKind::TypeAlias,
                    };
                    out.types.push(TypeItem {
                        kind,
                        name: n.text.clone(),
                        line: t.line,
                        end_line: n.line,
                        body: None,
                    });
                }
            }
            i += 1;
            continue;
        }
        i += 1;
    }
    // unbalanced input: close remaining scopes at EOF
    let eof = tokens.len();
    while let Some(s) = scopes.pop() {
        close_scope(&mut out, s, eof.saturating_sub(1), tokens);
    }
    out
}

/// Finalizes the item (if any) owning a scope that just closed at token
/// index `close`.
fn close_scope(out: &mut ItemSet, s: Scope, close: usize, tokens: &[Token]) {
    let end_line = tokens.get(close).map(|t| t.line).unwrap_or(u32::MAX);
    if let Some(fi) = s.fn_idx {
        if let Some(f) = out.fns.get_mut(fi) {
            f.body = Some((s.open, close + 1));
            f.end_line = end_line;
        }
    }
    if let Some(ti) = s.type_idx {
        if let Some(t) = out.types.get_mut(ti) {
            t.body = Some((s.open, close + 1));
            t.end_line = end_line;
        }
    }
}

/// Skips an attribute `#[...]` / `#![...]` starting at `i` (the `#`).
fn skip_attribute(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
        return i + 1;
    }
    let mut depth = 0i32;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// The enclosing context label for qualified names (`Type::` or
/// `mod::`).
fn context_label(scopes: &[Scope]) -> String {
    let mut label = String::new();
    for s in scopes {
        if !s.label.is_empty() {
            if !label.is_empty() {
                label.push_str("::");
            }
            label.push_str(&s.label);
        }
    }
    label
}

/// Parses `fn NAME ... ;` or `fn NAME ... { body }` starting at the
/// `fn` keyword. Returns the index to continue from (just past the
/// signature: the body is walked by the main loop so nested items are
/// seen).
fn parse_fn(tokens: &[Token], at: usize, out: &mut ItemSet, scopes: &mut Vec<Scope>) -> usize {
    let Some(name_tok) = tokens.get(at + 1) else {
        return at + 1;
    };
    if name_tok.kind != crate::lexer::TokenKind::Ident || is_keyword(&name_tok.text) {
        return at + 1;
    }
    let name = name_tok.text.clone();
    let ctx = context_label(scopes);
    let qualified = if ctx.is_empty() {
        name.clone()
    } else {
        format!("{ctx}::{name}")
    };
    // scan the signature for its body `{` or terminating `;`; generic
    // bounds and where clauses contain no braces, so the first `{` at
    // signature level opens the body. Track parens/brackets so closure
    // types in params don't confuse the `;` check.
    let mut j = at + 2;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct(';') && paren <= 0 && bracket <= 0 {
            // bodyless declaration (trait method, extern)
            out.fns.push(FnItem {
                name,
                qualified,
                line: tokens[at].line,
                end_line: t.line,
                body: None,
            });
            return j + 1;
        } else if t.is_punct('{') && paren <= 0 && bracket <= 0 {
            let idx = out.fns.len();
            out.fns.push(FnItem {
                name: name.clone(),
                qualified,
                line: tokens[at].line,
                end_line: t.line,
                body: None,
            });
            scopes.push(Scope {
                label: name,
                fn_idx: Some(idx),
                type_idx: None,
                open: j,
            });
            return j + 1;
        }
        j += 1;
    }
    // EOF inside a signature: record what we saw
    out.fns.push(FnItem {
        name,
        qualified,
        line: tokens[at].line,
        end_line: tokens.last().map(|t| t.line).unwrap_or(tokens[at].line),
        body: None,
    });
    tokens.len()
}

/// Parses `struct/enum/trait/union NAME ...` to its body or `;`.
fn parse_type_item(
    tokens: &[Token],
    at: usize,
    kind: ItemKind,
    out: &mut ItemSet,
    scopes: &mut Vec<Scope>,
) -> usize {
    let Some(name_tok) = tokens.get(at + 1) else {
        return at + 1;
    };
    if name_tok.kind != crate::lexer::TokenKind::Ident || is_keyword(&name_tok.text) {
        return at + 1;
    }
    let name = name_tok.text.clone();
    let mut j = at + 2;
    let mut paren = 0i32;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct(';') && paren <= 0 {
            // unit or tuple struct
            out.types.push(TypeItem {
                kind,
                name,
                line: tokens[at].line,
                end_line: t.line,
                body: None,
            });
            return j + 1;
        } else if t.is_punct('{') && paren <= 0 {
            let idx = out.types.len();
            out.types.push(TypeItem {
                kind,
                name: name.clone(),
                line: tokens[at].line,
                end_line: t.line,
                body: None,
            });
            scopes.push(Scope {
                label: String::new(),
                fn_idx: None,
                type_idx: Some(idx),
                open: j,
            });
            return j + 1;
        }
        j += 1;
    }
    tokens.len()
}

/// Parses `mod NAME;` (recorded as an out-of-line declaration) or
/// `mod NAME { ... }` (scope push).
fn parse_mod(tokens: &[Token], at: usize, out: &mut ItemSet, scopes: &mut Vec<Scope>) -> usize {
    let Some(name_tok) = tokens.get(at + 1) else {
        return at + 1;
    };
    if name_tok.kind != crate::lexer::TokenKind::Ident || is_keyword(&name_tok.text) {
        return at + 1;
    }
    match tokens.get(at + 2) {
        Some(t) if t.is_punct(';') => {
            out.mod_decls.push((name_tok.text.clone(), tokens[at].line));
            at + 3
        }
        Some(t) if t.is_punct('{') => {
            let idx = out.types.len();
            out.types.push(TypeItem {
                kind: ItemKind::Mod,
                name: name_tok.text.clone(),
                line: tokens[at].line,
                end_line: t.line,
                body: None,
            });
            scopes.push(Scope {
                label: name_tok.text.clone(),
                fn_idx: None,
                type_idx: Some(idx),
                open: at + 2,
            });
            at + 3
        }
        _ => at + 2,
    }
}

/// Parses an `impl` header to its `{`, pushing a scope labelled with
/// the self type: `impl Foo` → `Foo`, `impl Trait for Foo` → `Foo`.
fn parse_impl(tokens: &[Token], at: usize, scopes: &mut Vec<Scope>) -> usize {
    let mut j = at + 1;
    let mut after_for: Option<String> = None;
    let mut first_ident: Option<String> = None;
    let mut angle = 0i32;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_ident("for") && angle <= 0 {
            after_for = Some(String::new()); // armed: next ident is the self type
        } else if t.kind == crate::lexer::TokenKind::Ident && !is_keyword(&t.text) && angle <= 0 {
            match &mut after_for {
                Some(ty) if ty.is_empty() => *ty = t.text.clone(),
                _ => {
                    if first_ident.is_none() {
                        first_ident = Some(t.text.clone());
                    }
                }
            }
        } else if t.is_punct('{') {
            let label = after_for
                .filter(|s| !s.is_empty())
                .or(first_ident)
                .unwrap_or_default();
            scopes.push(Scope {
                label,
                fn_idx: None,
                type_idx: None,
                open: j,
            });
            return j + 1;
        } else if t.is_punct(';') {
            // `impl Foo;` is not Rust, but never loop past it
            return j + 1;
        }
        j += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> ItemSet {
        parse(&lex(src).tokens)
    }

    #[test]
    fn fns_get_names_spans_and_bodies() {
        let src = "fn a() { x(); }\nfn b(v: u32) -> u32 {\n  v\n}\n";
        let set = items(src);
        assert_eq!(set.fns.len(), 2);
        assert_eq!(set.fns[0].name, "a");
        assert_eq!((set.fns[0].line, set.fns[0].end_line), (1, 1));
        assert_eq!(set.fns[1].name, "b");
        assert_eq!((set.fns[1].line, set.fns[1].end_line), (2, 4));
        assert!(set.fns[1].body.is_some());
    }

    #[test]
    fn impl_methods_are_qualified_by_self_type() {
        let src = "impl Display for Engine { fn fmt(&self) {} }\nimpl Engine { fn run(&mut self) { self.fmt() } }";
        let set = items(src);
        let names: Vec<&str> = set.fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(names, vec!["Engine::fmt", "Engine::run"]);
    }

    #[test]
    fn nested_fns_and_enclosing_lookup() {
        let src = "fn outer() {\n  fn inner() {\n    x();\n  }\n  inner();\n}";
        let set = items(src);
        assert_eq!(set.fns.len(), 2);
        let inner = set.enclosing_fn(3).map(|i| set.fns[i].name.clone());
        assert_eq!(inner.as_deref(), Some("inner"));
        let outer = set.enclosing_fn(5).map(|i| set.fns[i].name.clone());
        assert_eq!(outer.as_deref(), Some("outer"));
    }

    #[test]
    fn trait_methods_without_bodies_are_declarations() {
        let src = "trait Obs {\n  fn on_probe(&mut self, t: f64);\n  fn on_batch(&mut self) {}\n}";
        let set = items(src);
        assert_eq!(set.fns.len(), 2);
        assert!(set.fns[0].body.is_none());
        assert!(set.fns[1].body.is_some());
        assert_eq!(set.types.len(), 1);
        assert_eq!(set.types[0].name, "Obs");
    }

    #[test]
    fn structs_enums_mods_and_consts_are_recorded() {
        let src = "struct ShardJob { hosts: Vec<Host> }\nenum Kind { A, B }\nmod telemetry;\nmod inline { fn f() {} }\nconst SALT: u64 = 1;\nstatic X: u32 = 0;\ntype Alias = u32;";
        let set = items(src);
        let type_names: Vec<&str> = set.types.iter().map(|t| t.name.as_str()).collect();
        assert!(type_names.contains(&"ShardJob"));
        assert!(type_names.contains(&"Kind"));
        assert!(type_names.contains(&"inline"));
        assert!(type_names.contains(&"SALT"));
        assert!(type_names.contains(&"X"));
        assert!(type_names.contains(&"Alias"));
        assert_eq!(set.mod_decls, vec![("telemetry".to_owned(), 3)]);
        assert_eq!(set.fns.len(), 1);
        assert_eq!(set.fns[0].qualified, "inline::f");
    }

    #[test]
    fn attribute_contents_are_not_items() {
        let src = "#[derive(Debug, Clone)]\n#[cfg(feature = \"telemetry\")]\nstruct S { x: u32 }";
        let set = items(src);
        assert_eq!(set.types.len(), 1);
        assert_eq!(set.types[0].name, "S");
    }

    #[test]
    fn closures_in_params_do_not_end_signatures() {
        let src = "fn apply(f: impl Fn(u32) -> u32) -> u32 { f(1) }\nfn next() {}";
        let set = items(src);
        assert_eq!(set.fns.len(), 2);
        assert_eq!(set.fns[0].name, "apply");
        assert_eq!(set.fns[1].name, "next");
    }

    #[test]
    fn unbalanced_braces_never_panic() {
        for src in [
            "fn a() { {",
            "} } fn b() {}",
            "impl {",
            "fn",
            "struct",
            "mod",
            "impl Foo for",
            "fn f(",
        ] {
            let _ = items(src);
        }
    }
}
