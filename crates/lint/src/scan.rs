//! File discovery, pragma application, and report assembly.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer;
use crate::pragma::{self, Pragma};
use crate::regions;
use crate::rules::{self, Diagnostic, RuleId};

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations that survived pragma filtering.
    pub diagnostics: Vec<Diagnostic>,
    /// Pragmas that actually waived at least one violation.
    pub used_pragmas: Vec<(Pragma, u32)>,
    /// Pragmas that waived nothing (stale waivers — reported, so they
    /// get cleaned up when the violation disappears).
    pub unused_pragmas: Vec<Pragma>,
}

/// Lints one in-memory source file under the given workspace-relative
/// path. The core entry point; the CLI and the fixture tests share it.
pub fn lint_source(rel_path: &str, src: &str) -> FileReport {
    let Some(ctx) = rules::classify(rel_path) else {
        return FileReport::default();
    };
    let lexed = lexer::lex(src);
    let regs = regions::analyze(&lexed.tokens);
    let is_lib_root = rel_path.ends_with("src/lib.rs");
    let raw = rules::check_file(&ctx, &lexed, &regs, is_lib_root);
    let (pragmas, bad) = pragma::collect(&lexed.comments, &lexed.tokens);

    let mut report = FileReport::default();
    let mut waived_by = vec![0u32; pragmas.len()];
    for d in raw {
        let waiver = pragmas
            .iter()
            .position(|p| p.rule == d.rule && p.effective_lines.contains(&d.line));
        match waiver {
            Some(i) => waived_by[i] += 1,
            None => report.diagnostics.push(d),
        }
    }
    for b in bad {
        report.diagnostics.push(Diagnostic {
            rule: RuleId::BadPragma,
            path: rel_path.to_owned(),
            line: b.line,
            message: b.message,
        });
    }
    for (p, count) in pragmas.into_iter().zip(waived_by) {
        if count > 0 {
            report.used_pragmas.push((p, count));
        } else {
            report.unused_pragmas.push(p);
        }
    }
    report
}

/// The whole run: every file's surviving diagnostics plus the waiver
/// inventory.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub diagnostics: Vec<Diagnostic>,
    pub used_pragmas: Vec<(Pragma, String, u32)>,
    pub unused_pragmas: Vec<(Pragma, String)>,
    pub files_scanned: usize,
}

impl WorkspaceReport {
    fn absorb(&mut self, rel_path: &str, file: FileReport) {
        self.files_scanned += 1;
        self.diagnostics.extend(file.diagnostics);
        for (p, n) in file.used_pragmas {
            self.used_pragmas.push((p, rel_path.to_owned(), n));
        }
        for p in file.unused_pragmas {
            self.unused_pragmas.push((p, rel_path.to_owned()));
        }
    }

    /// Violations per rule, in `RuleId::ALL` order (zeros skipped).
    pub fn counts_by_rule(&self) -> Vec<(RuleId, usize)> {
        RuleId::ALL
            .into_iter()
            .map(|r| (r, self.diagnostics.iter().filter(|d| d.rule == r).count()))
            .filter(|(_, n)| *n > 0)
            .collect()
    }

    /// The human-readable summary (diagnostics, then pragma inventory).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        if !self.diagnostics.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "hotspots-lint: {} file(s) scanned, {} violation(s)",
            self.files_scanned,
            self.diagnostics.len()
        ));
        for (rule, n) in self.counts_by_rule() {
            out.push_str(&format!("\n  {rule}: {n}"));
        }
        out.push('\n');
        if !self.used_pragmas.is_empty() {
            out.push_str(&format!(
                "\n{} waiver(s) in effect (review these periodically):\n",
                self.used_pragmas.len()
            ));
            for (p, path, n) in &self.used_pragmas {
                out.push_str(&format!(
                    "  {path}:{}: allow({}) ×{n} — {}\n",
                    p.line,
                    p.rule.name(),
                    p.reason
                ));
            }
        }
        if !self.unused_pragmas.is_empty() {
            out.push_str(&format!(
                "\n{} stale waiver(s) (no longer matching any violation — remove):\n",
                self.unused_pragmas.len()
            ));
            for (p, path) in &self.unused_pragmas {
                out.push_str(&format!("  {path}:{}: allow({})\n", p.line, p.rule.name()));
            }
        }
        out
    }

    /// The machine-readable report: one JSON object with `violations`
    /// and `waivers` arrays. Hand-assembled (no serde offline), with
    /// full string escaping.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"files_scanned\":");
        out.push_str(&self.files_scanned.to_string());
        out.push_str(",\"violations\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"name\":{},\"file\":{},\"line\":{},\"message\":{}}}",
                json_str(d.rule.id()),
                json_str(d.rule.name()),
                json_str(&d.path),
                d.line,
                json_str(&d.message)
            ));
        }
        out.push_str("],\"waivers\":[");
        for (i, (p, path, n)) in self.used_pragmas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"file\":{},\"line\":{},\"waived\":{n},\"reason\":{}}}",
                json_str(p.rule.id()),
                json_str(path),
                p.line,
                json_str(&p.reason)
            ));
        }
        out.push_str("]}");
        out
    }

    /// Exit status: nonzero iff violations survived.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects the `.rs` files a `--workspace` run scans: `crates/*/src`
/// recursively plus the root package's `src/`. Vendored stand-ins,
/// fixtures, tests/benches/examples are out of scope (rules D1–D5 are
/// library-code invariants; `classify` would skip most of them anyway).
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for d in dirs {
            collect_rs(&d.join("src"), &mut out);
        }
    }
    collect_rs(&root.join("src"), &mut out);
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Lints the given files (absolute or root-relative), reporting paths
/// relative to `root`.
pub fn lint_files(root: &Path, files: &[PathBuf]) -> WorkspaceReport {
    let mut report = WorkspaceReport::default();
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = fs::read_to_string(f) else {
            report.diagnostics.push(Diagnostic {
                rule: RuleId::BadPragma,
                path: rel.clone(),
                line: 0,
                message: "unreadable file".to_owned(),
            });
            continue;
        };
        report.absorb(&rel, lint_source(&rel, &src));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_waives_exactly_its_rule_and_line() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    // hotspots-lint: allow(panic-path) reason=\"caller checked\"\n    x.unwrap()\n}\n";
        let r = lint_source("crates/stats/src/x.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.used_pragmas.len(), 1);
        assert_eq!(r.used_pragmas[0].1, 1);
    }

    #[test]
    fn pragma_for_wrong_rule_waives_nothing() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    // hotspots-lint: allow(no-clock) reason=\"misfiled\"\n    x.unwrap()\n}\n";
        let r = lint_source("crates/stats/src/x.rs", src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.unused_pragmas.len(), 1);
    }

    #[test]
    fn trailing_pragma_waives_same_line() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() } // hotspots-lint: allow(panic-path) reason=\"demo\"\n";
        let r = lint_source("crates/stats/src/x.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn json_report_is_assembled_and_escaped() {
        let src = "pub fn f() { panic!(\"quote \\\" here\") }";
        let mut ws = WorkspaceReport::default();
        ws.absorb(
            "crates/stats/src/x.rs",
            lint_source("crates/stats/src/x.rs", src),
        );
        let json = ws.render_json();
        assert!(json.contains("\"rule\":\"D5\""));
        assert!(json.contains("\"violations\":["));
        assert!(!ws.is_clean());
    }

    #[test]
    fn bad_pragma_cannot_waive_itself() {
        let src = "// hotspots-lint: allow(bad-pragma) reason=\"nope\"\nfn f() {}\n";
        let r = lint_source("crates/stats/src/x.rs", src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, RuleId::BadPragma);
    }
}
