//! File discovery, the two-phase scan pipeline, pragma application,
//! and report assembly.
//!
//! The scan has two phases. The **per-file phase** is pure — lex,
//! region recovery, item parsing, and every local rule (D1–D5, R7) —
//! so it runs on a small worker pool under `--threads N`. The
//! **workspace phase** ([`finalize`]) is serial: it builds the call
//! graph over every file, runs the graph rules (R6, R8, R9), applies
//! the waiver pragmas, and sorts every finding by `(path, line, rule)`
//! so the output is byte-identical whatever the thread count.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::graph::CallGraph;
use crate::items::{self, ItemSet};
use crate::lexer::{self, Lexed};
use crate::pragma::{self, BadPragma, Pragma, PragmaKind};
use crate::regions::{self, Regions};
use crate::rules::{self, Diagnostic, FileCtx, RuleId};
use crate::{invariants, sarif};

/// Everything the per-file phase recovers from one source file — the
/// input the workspace phase consumes.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// `None` for files the linter does not check (they still count as
    /// scanned and still contribute nothing to the graph).
    pub ctx: Option<FileCtx>,
    pub lexed: Lexed,
    pub regions: Regions,
    pub items: ItemSet,
    /// Local-rule diagnostics before pragma application.
    pub raw: Vec<Diagnostic>,
    pub pragmas: Vec<Pragma>,
    pub bad: Vec<BadPragma>,
}

impl FileAnalysis {
    fn empty(rel_path: &str) -> FileAnalysis {
        FileAnalysis {
            rel_path: rel_path.to_owned(),
            ctx: None,
            lexed: Lexed::default(),
            regions: Regions::default(),
            items: ItemSet::default(),
            raw: Vec::new(),
            pragmas: Vec::new(),
            bad: Vec::new(),
        }
    }
}

/// The pure per-file phase: everything that needs only this one file.
pub fn analyze_source(rel_path: &str, src: &str) -> FileAnalysis {
    let Some(ctx) = rules::classify(rel_path) else {
        return FileAnalysis::empty(rel_path);
    };
    let lexed = lexer::lex(src);
    let regs = regions::analyze(&lexed.tokens);
    let items = items::parse(&lexed.tokens);
    let is_lib_root = rel_path.ends_with("src/lib.rs");
    let mut raw = rules::check_file(&ctx, &lexed, &regs, is_lib_root);
    raw.extend(invariants::check_rng_streams(
        &ctx,
        &lexed.tokens,
        &regs,
        &items,
    ));
    let (pragmas, bad) = pragma::collect(&lexed.comments, &lexed.tokens);
    FileAnalysis {
        rel_path: rel_path.to_owned(),
        ctx: Some(ctx),
        lexed,
        regions: regs,
        items,
        raw,
        pragmas,
        bad,
    }
}

/// The outcome of linting one file (the single-file API the fixture
/// tests drive; `finalize` produces the same data workspace-wide).
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations that survived pragma filtering.
    pub diagnostics: Vec<Diagnostic>,
    /// Pragmas that actually waived at least one violation.
    pub used_pragmas: Vec<(Pragma, u32)>,
    /// Pragmas that waived nothing (stale waivers — reported, so they
    /// get cleaned up when the violation disappears).
    pub unused_pragmas: Vec<Pragma>,
    /// `certifies(panic-free)` pragmas with the certified fn and how
    /// many D5 sites each suppressed.
    pub certifications: Vec<(Pragma, String, u32)>,
}

/// Lints one in-memory source file under the given workspace-relative
/// path, treating it as a one-file workspace (the graph rules see only
/// this file). The CLI single-file mode and the fixture tests share it.
pub fn lint_source(rel_path: &str, src: &str) -> FileReport {
    let ws = finalize(vec![analyze_source(rel_path, src)]);
    FileReport {
        diagnostics: ws.diagnostics,
        used_pragmas: ws
            .used_pragmas
            .into_iter()
            .map(|(p, _, n)| (p, n))
            .collect(),
        unused_pragmas: ws.unused_pragmas.into_iter().map(|(p, _)| p).collect(),
        certifications: ws
            .certifications
            .into_iter()
            .map(|(p, _, f, n)| (p, f, n))
            .collect(),
    }
}

/// The whole run: every file's surviving diagnostics plus the waiver
/// and certification inventory.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub diagnostics: Vec<Diagnostic>,
    pub used_pragmas: Vec<(Pragma, String, u32)>,
    pub unused_pragmas: Vec<(Pragma, String)>,
    /// `(pragma, path, certified fn, D5 sites suppressed)`.
    pub certifications: Vec<(Pragma, String, String, u32)>,
    pub files_scanned: usize,
}

/// The serial workspace phase: graph rules, pragma application,
/// deterministic ordering.
pub fn finalize(analyses: Vec<FileAnalysis>) -> WorkspaceReport {
    let mut report = WorkspaceReport {
        files_scanned: analyses.len(),
        ..WorkspaceReport::default()
    };

    // graph rules need every file's items at once
    let graph_input: Vec<(&[lexer::Token], &ItemSet)> = analyses
        .iter()
        .map(|a| (a.lexed.tokens.as_slice(), &a.items))
        .collect();
    let graph = CallGraph::build(&graph_input);
    let cert = invariants::check_certifications(&analyses, &graph);
    let r8 = invariants::check_executor_isolation(&analyses, &graph);
    let r9 = invariants::check_gate_consistency(&analyses);

    // group the workspace-rule findings by file for pragma application
    let mut extra: Vec<Vec<Diagnostic>> = vec![Vec::new(); analyses.len()];
    let by_path: std::collections::BTreeMap<&str, usize> = analyses
        .iter()
        .enumerate()
        .map(|(i, a)| (a.rel_path.as_str(), i))
        .collect();
    for d in cert.diags.into_iter().chain(r8).chain(r9) {
        match by_path.get(d.path.as_str()) {
            Some(&i) => extra[i].push(d),
            None => report.diagnostics.push(d),
        }
    }

    for (fi, a) in analyses.iter().enumerate() {
        let mut waived_by = vec![0u32; a.pragmas.len()];
        let cert_suppressed = |di: usize| cert.suppressed.contains(&(fi, di));
        let all = a
            .raw
            .iter()
            .enumerate()
            .filter(|(di, _)| !cert_suppressed(*di))
            .map(|(_, d)| d.clone())
            .chain(extra[fi].drain(..));
        for d in all {
            let waiver = a
                .pragmas
                .iter()
                .position(|p| p.rule() == Some(d.rule) && p.effective_lines.contains(&d.line));
            match waiver {
                Some(i) => waived_by[i] += 1,
                None => report.diagnostics.push(d),
            }
        }
        for b in &a.bad {
            report.diagnostics.push(Diagnostic {
                rule: RuleId::BadPragma,
                path: a.rel_path.clone(),
                line: b.line,
                message: b.message.clone(),
            });
        }
        for (pi, (p, count)) in a.pragmas.iter().zip(waived_by).enumerate() {
            match p.kind {
                PragmaKind::Allow(_) => {
                    if count > 0 {
                        report
                            .used_pragmas
                            .push((p.clone(), a.rel_path.clone(), count));
                    } else {
                        report.unused_pragmas.push((p.clone(), a.rel_path.clone()));
                    }
                }
                PragmaKind::Certify => {
                    if let Some((_, _, name, n)) = cert
                        .cert_uses
                        .iter()
                        .find(|(cf, cp, _, _)| *cf == fi && *cp == pi)
                    {
                        report.certifications.push((
                            p.clone(),
                            a.rel_path.clone(),
                            name.clone(),
                            *n,
                        ));
                    }
                    // unattached certs already produced an R6 diagnostic
                }
            }
        }
    }

    // deterministic emit order whatever the scan order was
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.rule.id()).cmp(&(&b.path, b.line, b.rule.id())));
    report
        .used_pragmas
        .sort_by(|a, b| (&a.1, a.0.line).cmp(&(&b.1, b.0.line)));
    report
        .unused_pragmas
        .sort_by(|a, b| (&a.1, a.0.line).cmp(&(&b.1, b.0.line)));
    report
        .certifications
        .sort_by(|a, b| (&a.1, a.0.line).cmp(&(&b.1, b.0.line)));
    report
}

impl WorkspaceReport {
    /// Violations per rule, in `RuleId::ALL` order (zeros skipped).
    pub fn counts_by_rule(&self) -> Vec<(RuleId, usize)> {
        RuleId::ALL
            .into_iter()
            .map(|r| (r, self.diagnostics.iter().filter(|d| d.rule == r).count()))
            .filter(|(_, n)| *n > 0)
            .collect()
    }

    /// The human-readable summary (diagnostics, then pragma inventory).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        if !self.diagnostics.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "hotspots-lint: {} file(s) scanned, {} violation(s)",
            self.files_scanned,
            self.diagnostics.len()
        ));
        for (rule, n) in self.counts_by_rule() {
            out.push_str(&format!("\n  {rule}: {n}"));
        }
        out.push('\n');
        if !self.used_pragmas.is_empty() {
            out.push_str(&format!(
                "\n{} waiver(s) in effect (review these periodically):\n",
                self.used_pragmas.len()
            ));
            for (p, path, n) in &self.used_pragmas {
                let rule = p.rule().unwrap_or(RuleId::BadPragma);
                out.push_str(&format!(
                    "  {path}:{}: allow({}) ×{n} — {}\n",
                    p.line,
                    rule.name(),
                    p.reason
                ));
            }
        }
        if !self.certifications.is_empty() {
            out.push_str(&format!(
                "\n{} fn(s) certified panic-free (checked against the call graph):\n",
                self.certifications.len()
            ));
            for (p, path, fn_name, n) in &self.certifications {
                out.push_str(&format!(
                    "  {path}:{}: certifies(panic-free) `{fn_name}` ×{n} — {}\n",
                    p.line, p.reason
                ));
            }
        }
        if !self.unused_pragmas.is_empty() {
            out.push_str(&format!(
                "\n{} stale waiver(s) (no longer matching any violation — remove):\n",
                self.unused_pragmas.len()
            ));
            for (p, path) in &self.unused_pragmas {
                let rule = p.rule().unwrap_or(RuleId::BadPragma);
                out.push_str(&format!("  {path}:{}: allow({})\n", p.line, rule.name()));
            }
        }
        out
    }

    /// The machine-readable report: one JSON object with `violations`,
    /// `waivers`, and `certifications` arrays. Hand-assembled (no serde
    /// offline), with full string escaping.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"files_scanned\":");
        out.push_str(&self.files_scanned.to_string());
        out.push_str(",\"violations\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"name\":{},\"file\":{},\"line\":{},\"message\":{}}}",
                json_str(d.rule.id()),
                json_str(d.rule.name()),
                json_str(&d.path),
                d.line,
                json_str(&d.message)
            ));
        }
        out.push_str("],\"waivers\":[");
        for (i, (p, path, n)) in self.used_pragmas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let rule = p.rule().unwrap_or(RuleId::BadPragma);
            out.push_str(&format!(
                "{{\"rule\":{},\"file\":{},\"line\":{},\"waived\":{n},\"reason\":{}}}",
                json_str(rule.id()),
                json_str(path),
                p.line,
                json_str(&p.reason)
            ));
        }
        out.push_str("],\"certifications\":[");
        for (i, (p, path, fn_name, n)) in self.certifications.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":{},\"line\":{},\"fn\":{},\"suppressed\":{n},\"reason\":{}}}",
                json_str(path),
                p.line,
                json_str(fn_name),
                json_str(&p.reason)
            ));
        }
        out.push_str("]}");
        out
    }

    /// The SARIF 2.1.0 report (CI uploads this for PR annotations).
    pub fn render_sarif(&self) -> String {
        sarif::render(self)
    }

    /// Exit status: nonzero iff violations survived.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects the `.rs` files a `--workspace` run scans: `crates/*/src`
/// recursively plus the root package's `src/`. Vendored stand-ins,
/// fixtures, tests/benches/examples are out of scope (rules D1–D5 are
/// library-code invariants; `classify` would skip most of them anyway).
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for d in dirs {
            collect_rs(&d.join("src"), &mut out);
        }
    }
    collect_rs(&root.join("src"), &mut out);
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// One file's per-file phase, reading from disk.
fn analyze_path(root: &Path, f: &Path) -> FileAnalysis {
    let rel = f
        .strip_prefix(root)
        .unwrap_or(f)
        .to_string_lossy()
        .replace('\\', "/");
    match fs::read_to_string(f) {
        Ok(src) => analyze_source(&rel, &src),
        Err(_) => {
            let mut a = FileAnalysis::empty(&rel);
            a.raw.push(Diagnostic {
                rule: RuleId::BadPragma,
                path: rel,
                line: 0,
                message: "unreadable file".to_owned(),
            });
            a
        }
    }
}

/// Lints the given files (absolute or root-relative) serially,
/// reporting paths relative to `root`.
pub fn lint_files(root: &Path, files: &[PathBuf]) -> WorkspaceReport {
    lint_files_with(root, files, 1)
}

/// Lints with a worker pool of `threads` (1 = serial). The per-file
/// phase is pure and order-independent; results land in per-index
/// slots, so the finalized report is byte-identical to a serial run.
pub fn lint_files_with(root: &Path, files: &[PathBuf], threads: usize) -> WorkspaceReport {
    let analyses: Vec<FileAnalysis> = if threads <= 1 || files.len() < 2 {
        files.iter().map(|f| analyze_path(root, f)).collect()
    } else {
        let threads = threads.min(files.len());
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<FileAnalysis>>> =
            Mutex::new((0..files.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= files.len() {
                        break;
                    }
                    let a = analyze_path(root, &files[i]);
                    if let Ok(mut s) = slots.lock() {
                        s[i] = Some(a);
                    }
                });
            }
        });
        slots
            .into_inner()
            .unwrap_or_default()
            .into_iter()
            .enumerate()
            .map(|(i, a)| {
                a.unwrap_or_else(|| {
                    // a poisoned slot (worker panicked) still yields a
                    // deterministic report: re-run that file serially
                    analyze_path(root, &files[i])
                })
            })
            .collect()
    };
    finalize(analyses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_waives_exactly_its_rule_and_line() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    // hotspots-lint: allow(panic-path) reason=\"caller checked\"\n    x.unwrap()\n}\n";
        let r = lint_source("crates/stats/src/x.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.used_pragmas.len(), 1);
        assert_eq!(r.used_pragmas[0].1, 1);
    }

    #[test]
    fn pragma_for_wrong_rule_waives_nothing() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    // hotspots-lint: allow(no-clock) reason=\"misfiled\"\n    x.unwrap()\n}\n";
        let r = lint_source("crates/stats/src/x.rs", src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.unused_pragmas.len(), 1);
    }

    #[test]
    fn trailing_pragma_waives_same_line() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() } // hotspots-lint: allow(panic-path) reason=\"demo\"\n";
        let r = lint_source("crates/stats/src/x.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn certification_suppresses_body_sites_and_is_counted() {
        let src = "// hotspots-lint: certifies(panic-free) reason=\"idx bounded\"\npub fn f(v: &[u32]) -> u32 { v.first().copied().map(|x| x).unwrap() }\n";
        let r = lint_source("crates/stats/src/x.rs", src);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.certifications.len(), 1);
        assert_eq!(r.certifications[0].1, "f");
        assert_eq!(r.certifications[0].2, 1);
    }

    #[test]
    fn json_report_is_assembled_and_escaped() {
        let src = "pub fn f() { panic!(\"quote \\\" here\") }";
        let ws = finalize(vec![analyze_source("crates/stats/src/x.rs", src)]);
        let json = ws.render_json();
        assert!(json.contains("\"rule\":\"D5\""));
        assert!(json.contains("\"violations\":["));
        assert!(json.contains("\"certifications\":["));
        assert!(!ws.is_clean());
    }

    #[test]
    fn bad_pragma_cannot_waive_itself() {
        let src = "// hotspots-lint: allow(bad-pragma) reason=\"nope\"\nfn f() {}\n";
        let r = lint_source("crates/stats/src/x.rs", src);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, RuleId::BadPragma);
    }

    #[test]
    fn diagnostics_come_out_sorted_by_path_line_rule() {
        let a = analyze_source(
            "crates/stats/src/b.rs",
            "pub fn f() { panic!(\"x\") }\npub fn g() { panic!(\"y\") }\n",
        );
        let b = analyze_source("crates/stats/src/a.rs", "pub fn h() { panic!(\"z\") }\n");
        let ws = finalize(vec![a, b]);
        let keys: Vec<(String, u32)> = ws
            .diagnostics
            .iter()
            .map(|d| (d.path.clone(), d.line))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(keys[0].0, "crates/stats/src/a.rs");
    }
}
