//! SARIF 2.1.0 export, hand-assembled like the JSON report (no serde
//! offline).
//!
//! CI uploads this file as an artifact so code-scanning UIs can
//! annotate PRs with the findings. One run, one driver
//! (`hotspots-lint`), rule metadata sourced from [`RULE_DOCS`] — the
//! same table `--explain` and the DESIGN.md §6 drift test read, so the
//! three can never disagree.

use crate::rules::RULE_DOCS;
use crate::scan::{json_str, WorkspaceReport};

/// The schema/version header every SARIF consumer checks first.
const SARIF_VERSION: &str = "2.1.0";
const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Renders the report as one SARIF log with a single run.
pub fn render(report: &WorkspaceReport) -> String {
    let mut out = String::from("{\"version\":");
    out.push_str(&json_str(SARIF_VERSION));
    out.push_str(",\"$schema\":");
    out.push_str(&json_str(SARIF_SCHEMA));
    out.push_str(",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"hotspots-lint\"");
    out.push_str(",\"informationUri\":\"https://github.com/hotspots/hotspots\"");
    out.push_str(",\"rules\":[");
    for (i, doc) in RULE_DOCS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"name\":{},\"shortDescription\":{{\"text\":{}}},\
             \"help\":{{\"text\":{}}}}}",
            json_str(doc.rule.id()),
            json_str(doc.rule.name()),
            json_str(doc.guarantee),
            json_str(&format!(
                "example violation: {}\nwaiver: {}",
                doc.example, doc.waiver
            )),
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
             {{\"uri\":{}}},\"region\":{{\"startLine\":{}}}}}}}]}}",
            json_str(d.rule.id()),
            json_str(&d.message),
            json_str(&d.path),
            d.line.max(1),
        ));
    }
    out.push_str("]}]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{analyze_source, finalize};

    #[test]
    fn sarif_log_carries_rules_and_results() {
        let ws = finalize(vec![analyze_source(
            "crates/stats/src/x.rs",
            "pub fn f() { panic!(\"boom\") }",
        )]);
        let sarif = render(&ws);
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"name\":\"hotspots-lint\""));
        assert!(sarif.contains("\"id\":\"D5\""));
        assert!(sarif.contains("\"ruleId\":\"D5\""));
        assert!(sarif.contains("\"startLine\":1"));
        // every rule family ships metadata, violations or not
        for id in ["D1", "D2", "D3", "D4", "R6", "R7", "R8", "R9"] {
            assert!(sarif.contains(&format!("\"id\":\"{id}\"")), "{id} missing");
        }
    }
}
