//! **hotspots-lint** — the workspace invariant linter.
//!
//! The reproduction's scientific claims rest on invariants that code
//! review alone cannot hold forever: bit-identical serial/parallel
//! runs, no clock reads in the default hot loop, stable-order JSONL
//! reports, and randomness that flows only from the id-keyed SplitMix64
//! streams. The paper itself is a catalogue of what tiny violations do
//! at scale — Blaster's seed, Slammer's broken LCG increment — so this
//! tool machine-checks *our* equivalents on every CI run:
//!
//! * **D1 `no-clock`** — no `Instant::now`/`SystemTime` in hot-path
//!   crates outside `#[cfg(feature = "telemetry")]` regions.
//! * **D2 `unordered-iteration`** — no `HashMap`/`HashSet` in code
//!   that feeds reports, JSONL, or rendered output.
//! * **D3 `ambient-entropy`** — no `thread_rng`/`OsRng`/`RandomState`
//!   anywhere; all RNG is seeded and accounted.
//! * **D4 `forbid-unsafe`** — every library crate carries
//!   `#![forbid(unsafe_code)]`.
//! * **D5 `panic-path`** — no `unwrap`/`expect`/`panic!` in library
//!   code without a justified waiver.
//!
//! Run it as `cargo run -p hotspots-lint -- --workspace` (exit nonzero
//! on violations, `--json` for machine-readable output). Waive a
//! violation in place with
//! `// hotspots-lint: allow(<rule>) reason="…"` — the reason is
//! mandatory and every waiver is listed in the run summary.
//!
//! The scanner is a small hand-rolled lexer ([`lexer`]), not a parser:
//! token-level checks plus bracket-depth region recovery ([`regions`])
//! are enough for these rules and keep the tool dependency-free.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod pragma;
pub mod regions;
pub mod rules;
pub mod scan;

pub use rules::{Diagnostic, RuleId};
pub use scan::{lint_files, lint_source, workspace_files, WorkspaceReport};
