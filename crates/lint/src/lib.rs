//! **hotspots-lint** — the workspace invariant linter.
//!
//! The reproduction's scientific claims rest on invariants that code
//! review alone cannot hold forever: bit-identical serial/parallel
//! runs, no clock reads in the default hot loop, stable-order JSONL
//! reports, and randomness that flows only from the id-keyed SplitMix64
//! streams. The paper itself is a catalogue of what tiny violations do
//! at scale — Blaster's seed, Slammer's broken LCG increment — so this
//! tool machine-checks *our* equivalents on every CI run:
//!
//! * **D1 `no-clock`** — no `Instant::now`/`SystemTime` in hot-path
//!   crates outside `#[cfg(feature = "telemetry")]` regions.
//! * **D2 `unordered-iteration`** — no `HashMap`/`HashSet` in code
//!   that feeds reports, JSONL, or rendered output.
//! * **D3 `ambient-entropy`** — no `thread_rng`/`OsRng`/`RandomState`
//!   anywhere; all RNG is seeded and accounted.
//! * **D4 `forbid-unsafe`** — every library crate carries
//!   `#![forbid(unsafe_code)]`.
//! * **D5 `panic-path`** — no `unwrap`/`expect`/`panic!` in library
//!   code without a justified waiver.
//!
//! On top of the token rules sit four call-graph-driven families, fed
//! by a hand-rolled item parser ([`items`]) and a conservative
//! name-resolved call graph ([`graph`]):
//!
//! * **R6 `panic-reachability`** — `certifies(panic-free)` pragmas are
//!   checked interprocedurally: a certified fn must not reach an
//!   unwaived panic site through any call chain.
//! * **R7 `rng-stream-discipline`** — RNG constructions in
//!   sim/targeting must derive from id-keyed seeds; no RNG state in
//!   shard payloads or behind `Arc`.
//! * **R8 `executor-isolation`** — nothing reachable from
//!   `drive_shard`/`worker_loop` mutates observers or shared engine
//!   flags; every channel `Sender<T>` pairs with a `Receiver<T>`.
//! * **R9 `gate-consistency`** — telemetry-gated items are referenced
//!   only from equally gated code.
//!
//! Run it as `cargo run -p hotspots-lint -- --workspace` (exit nonzero
//! on violations; `--json` or `--sarif` for machine-readable output,
//! `--threads N` to parallelize the per-file phase, `--explain <rule>`
//! for any rule's contract). Waive a violation in place with
//! `// hotspots-lint: allow(<rule>) reason="…"` — the reason is
//! mandatory and every waiver is listed in the run summary.
//!
//! The scanner is a small hand-rolled lexer ([`lexer`]), not a parser:
//! token-level checks plus bracket-depth region recovery ([`regions`])
//! and the single-pass item parser are enough for these rules and keep
//! the tool dependency-free.

#![forbid(unsafe_code)]

pub mod graph;
pub mod invariants;
pub mod items;
pub mod lexer;
pub mod pragma;
pub mod regions;
pub mod rules;
pub mod sarif;
pub mod scan;

pub use rules::{Diagnostic, RuleId};
pub use scan::{lint_files, lint_files_with, lint_source, workspace_files, WorkspaceReport};
