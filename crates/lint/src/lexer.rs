//! A small hand-rolled Rust lexer.
//!
//! The rule engine needs exactly four things from a source file: the
//! identifier/punctuation stream with line numbers, string literals
//! kept distinct from code (so `"Instant::now"` in a message never
//! trips a rule), comments captured separately (pragmas live there),
//! and a guarantee that arbitrary bytes never cause a panic (pinned by
//! a proptest). It is *not* a full Rust lexer: it understands exactly
//! enough — nested block comments, raw strings, char-vs-lifetime
//! disambiguation — to make token-level rules trustworthy.

/// What a token is. Literal payloads keep their full source text so
/// rules can inspect e.g. `cfg(feature = "telemetry")` predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// `'static`, `'a` — lifetimes and loop labels.
    Lifetime,
    /// Integer or float literal (suffix included).
    Number,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation byte (`.`, `:`, `#`, `{`, …).
    Punct,
}

/// One lexed token: kind, 1-based source line, and its text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub text: String,
}

impl Token {
    /// True if this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True if this is the punctuation byte `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == 1
            && self.text.as_bytes()[0] as char == c
    }
}

/// One comment (line or block) with the line it starts on. Doc
/// comments are comments too — pragmas may live in either.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The result of lexing one file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn text(&self, from: usize) -> String {
        String::from_utf8_lossy(&self.src[from.min(self.src.len())..self.pos]).into_owned()
    }
}

/// Lexes `src` into tokens and comments. Never panics, whatever the
/// input — unterminated literals and comments simply end at EOF.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = cur.peek(0) {
        let start = cur.pos;
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                out.comments.push(Comment {
                    line,
                    text: cur.text(start),
                });
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    line,
                    text: cur.text(start),
                });
            }
            b'"' => {
                lex_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    line,
                    text: cur.text(start),
                });
            }
            b'\'' => {
                let kind = lex_quote(&mut cur);
                out.tokens.push(Token {
                    kind,
                    line,
                    text: cur.text(start),
                });
            }
            b'0'..=b'9' => {
                lex_number(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    line,
                    text: cur.text(start),
                });
            }
            b if is_ident_start(b) => {
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                let ident = cur.text(start);
                // `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`: the "identifier"
                // was a literal prefix.
                let prefix_ok = matches!(ident.as_str(), "r" | "b" | "br" | "rb");
                if prefix_ok && lex_raw_or_string_after_prefix(&mut cur, &ident) {
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        line,
                        text: cur.text(start),
                    });
                } else if ident == "b" && cur.peek(0) == Some(b'\'') {
                    let kind = lex_quote(&mut cur);
                    out.tokens.push(Token {
                        kind,
                        line,
                        text: cur.text(start),
                    });
                } else {
                    out.tokens.push(Token {
                        kind: TokenKind::Ident,
                        line,
                        text: ident,
                    });
                }
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    line,
                    text: cur.text(start),
                });
            }
        }
    }
    out
}

/// Consumes a regular `"…"` string starting at the opening quote.
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.peek(0) {
        match c {
            b'\\' => {
                cur.bump();
                cur.bump();
            }
            b'"' => {
                cur.bump();
                return;
            }
            _ => {
                cur.bump();
            }
        }
    }
}

/// After an `r`/`b`/`br`/`rb` prefix, consumes a raw or plain string if
/// one follows. Returns false (consuming nothing) otherwise.
fn lex_raw_or_string_after_prefix(cur: &mut Cursor<'_>, prefix: &str) -> bool {
    let raw = prefix.contains('r');
    if raw {
        // r"…" or r#…#"…"#…#
        let mut hashes = 0usize;
        while cur.peek(hashes) == Some(b'#') {
            hashes += 1;
        }
        if cur.peek(hashes) != Some(b'"') {
            return false;
        }
        for _ in 0..=hashes {
            cur.bump();
        }
        // scan for `"` followed by `hashes` hashes
        'outer: while let Some(c) = cur.bump() {
            if c == b'"' {
                for i in 0..hashes {
                    if cur.peek(i) != Some(b'#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
        true
    } else if cur.peek(0) == Some(b'"') {
        lex_string(cur);
        true
    } else {
        false
    }
}

/// Consumes a `'…` construct: a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // opening quote
    match cur.peek(0) {
        Some(b'\\') => {
            // escaped char literal: consume escape then scan to close
            cur.bump();
            cur.bump();
            while let Some(c) = cur.peek(0) {
                cur.bump();
                if c == b'\'' {
                    break;
                }
            }
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) && cur.peek(1) != Some(b'\'') => {
            // lifetime or label: 'a, 'static, 'outer
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            TokenKind::Lifetime
        }
        Some(_) => {
            // char literal: one (possibly multi-byte) char then close
            cur.bump();
            while cur.peek(0).is_some_and(|c| c >= 0x80) {
                cur.bump();
            }
            if cur.peek(0) == Some(b'\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        None => TokenKind::Char,
    }
}

/// Consumes a numeric literal (integers, floats, hex/oct/bin, suffixes)
/// without eating range operators (`0..10`) or method calls (`1.max(x)`).
fn lex_number(cur: &mut Cursor<'_>) {
    while cur
        .peek(0)
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
    {
        cur.bump();
    }
    // fractional part only if `.` is followed by a digit (so `0..10`
    // and `1.max()` stay three tokens)
    if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        while cur
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            cur.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_do_not_leak_identifiers() {
        let src = r#"let x = "Instant::now inside a string"; call();"#;
        assert_eq!(idents(src), vec!["let", "x", "call"]);
    }

    #[test]
    fn raw_strings_with_hashes_are_opaque() {
        let src = r###"let s = r#"HashMap " quote"#; next();"###;
        assert_eq!(idents(src), vec!["let", "s", "next"]);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let src = "// thread_rng in a comment\nfn f() {} /* block\nSystemTime */";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("thread_rng"));
        assert_eq!(lexed.comments[1].line, 2);
        let names: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(names, vec!["fn", "f"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn escaped_quote_char_literal() {
        let src = r"let q = '\''; let n = '\n'; done()";
        assert_eq!(idents(src), vec!["let", "q", "let", "n", "done"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let src = "for i in 0..10 { x = 1.5; y = 2.max(z); }";
        let lexed = lex(src);
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5", "2"]);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("max")));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let s = b\"bytes\"; let c = b'x'; end()";
        assert_eq!(idents(src), vec!["let", "s", "let", "c", "end"]);
    }

    #[test]
    fn unterminated_constructs_hit_eof_quietly() {
        for src in ["\"never closed", "/* open", "r#\"raw", "'", "b'"] {
            let _ = lex(src);
        }
    }
}
