//! Attribute-scoped regions: which lines are `#[cfg(test)]` code, and
//! which are `#[cfg(feature = "telemetry")]`-gated.
//!
//! The lexer produces a flat token stream, so regions are recovered
//! with a bracket-depth heuristic: an attribute's target runs to the
//! close of its first depth-0 brace group (items, gated expression
//! blocks) or to the first depth-0 `;` (statements, `mod x;`,
//! trait-method declarations). That covers every gating pattern the
//! workspace uses — `#[cfg(test)] mod tests { … }`, gated `let`
//! bindings, gated `{ … }` expression blocks, gated functions — without
//! needing a real parser.

use crate::lexer::{Token, TokenKind};

/// A closed, 1-based line range `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineRange {
    pub start: u32,
    pub end: u32,
}

impl LineRange {
    /// True if `line` falls inside this range.
    pub fn contains(&self, line: u32) -> bool {
        self.start <= line && line <= self.end
    }
}

/// The gated regions of one file.
#[derive(Debug, Default)]
pub struct Regions {
    /// `#[cfg(test)]` / `#[cfg(any(test, …))]` targets, plus whole
    /// files gated with an inner `#![cfg(test)]`.
    pub test: Vec<LineRange>,
    /// `#[cfg(feature = "telemetry")]` targets (any predicate that
    /// names the `telemetry` feature).
    pub telemetry: Vec<LineRange>,
}

impl Regions {
    /// True if `line` is inside test-gated code.
    pub fn in_test(&self, line: u32) -> bool {
        self.test.iter().any(|r| r.contains(line))
    }

    /// True if `line` is inside telemetry-gated code.
    pub fn in_telemetry(&self, line: u32) -> bool {
        self.telemetry.iter().any(|r| r.contains(line))
    }
}

/// Scans the token stream for cfg attributes and computes their target
/// line ranges.
pub fn analyze(tokens: &[Token]) -> Regions {
    let mut regions = Regions::default();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = j < tokens.len() && tokens[j].is_punct('!');
        if inner {
            j += 1;
        }
        if j >= tokens.len() || !tokens[j].is_punct('[') {
            i += 1;
            continue;
        }
        // collect the attribute group to its matching `]`
        let attr_start = j + 1;
        let mut depth = 1i32;
        let mut k = attr_start;
        while k < tokens.len() && depth > 0 {
            if tokens[k].is_punct('[') {
                depth += 1;
            } else if tokens[k].is_punct(']') {
                depth -= 1;
            }
            k += 1;
        }
        let attr = &tokens[attr_start..k.saturating_sub(1).max(attr_start)];
        let after = k; // first token past `]`
        let is_cfg = attr.first().is_some_and(|t| t.is_ident("cfg"));
        let gates_test = is_cfg && attr.iter().any(|t| t.is_ident("test"));
        let gates_telemetry = is_cfg
            && attr.iter().any(|t| t.is_ident("feature"))
            && attr
                .iter()
                .any(|t| t.kind == TokenKind::Str && t.text.contains("telemetry"));
        if !gates_test && !gates_telemetry {
            i = after;
            continue;
        }
        let range = if inner {
            // inner attribute: gates the whole enclosing file/module
            LineRange {
                start: 1,
                end: u32::MAX,
            }
        } else {
            target_range(tokens, after)
        };
        if gates_test {
            regions.test.push(range);
        }
        if gates_telemetry {
            regions.telemetry.push(range);
        }
        i = after;
    }
    regions
}

/// The line range of the item/statement an outer attribute at token
/// position `from` applies to.
fn target_range(tokens: &[Token], from: usize) -> LineRange {
    let start_line = tokens
        .get(from)
        .map(|t| t.line)
        .unwrap_or(u32::MAX.saturating_sub(1));
    let mut i = from;
    // skip any stacked attributes between this one and the target
    while i + 1 < tokens.len() && tokens[i].is_punct('#') {
        let mut j = i + 1;
        if tokens[j].is_punct('!') {
            j += 1;
        }
        if !tokens[j].is_punct('[') {
            break;
        }
        let mut depth = 1i32;
        j += 1;
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('[') {
                depth += 1;
            } else if tokens[j].is_punct(']') {
                depth -= 1;
            }
            j += 1;
        }
        i = j;
    }
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut last_line = start_line;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_bytes().first().copied() {
                Some(b'(') => paren += 1,
                Some(b')') => paren -= 1,
                Some(b'[') => bracket += 1,
                Some(b']') => bracket -= 1,
                Some(b'{') => {
                    brace += 1;
                }
                Some(b'}') => {
                    // an *unmatched* close belongs to the enclosing
                    // item — the target (a gated field or variant)
                    // ended before it
                    if brace == 0 && paren == 0 && bracket == 0 {
                        return LineRange {
                            start: start_line,
                            end: last_line,
                        };
                    }
                    brace -= 1;
                    // close of a depth-0 brace group ends an item
                    // (fn/mod/impl body, gated expression block)
                    if brace == 0 && paren == 0 && bracket == 0 {
                        return LineRange {
                            start: start_line,
                            end: t.line,
                        };
                    }
                }
                // a depth-0 `;` ends a gated statement; a depth-0 `,`
                // ends a gated struct field, enum variant, or match arm
                Some(b';') | Some(b',') if paren == 0 && bracket == 0 && brace == 0 => {
                    return LineRange {
                        start: start_line,
                        end: t.line,
                    };
                }
                _ => {}
            }
        }
        last_line = t.line;
        i += 1;
    }
    LineRange {
        start: start_line,
        end: last_line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn regions(src: &str) -> Regions {
        analyze(&lex(src).tokens)
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn after() {}";
        let r = regions(src);
        assert!(!r.in_test(1));
        assert!(r.in_test(3));
        assert!(r.in_test(4));
        assert!(r.in_test(5));
        assert!(!r.in_test(6));
    }

    #[test]
    fn gated_let_statement_ends_at_semicolon() {
        let src = "#[cfg(feature = \"telemetry\")]\nlet t0 = Instant::now();\nlet x = 1;";
        let r = regions(src);
        assert!(r.in_telemetry(2));
        assert!(!r.in_telemetry(3));
    }

    #[test]
    fn gated_expression_block_spans_to_close() {
        let src = "#[cfg(feature = \"telemetry\")]\n{\n  a += t1 - t0;\n  b += t2.elapsed();\n}\nafter();";
        let r = regions(src);
        assert!(r.in_telemetry(3));
        assert!(r.in_telemetry(4));
        assert!(!r.in_telemetry(6));
    }

    #[test]
    fn any_predicate_with_test_counts_as_test() {
        let src = "#[cfg(any(test, feature = \"slow\"))]\nfn helper() {\n  x\n}\nfn live() {}";
        let r = regions(src);
        assert!(r.in_test(2));
        assert!(r.in_test(3));
        assert!(!r.in_test(5));
    }

    #[test]
    fn inner_cfg_gates_whole_file() {
        let src = "#![cfg(test)]\nfn anything() {}";
        let r = regions(src);
        assert!(r.in_test(1));
        assert!(r.in_test(2));
    }

    #[test]
    fn stacked_attributes_reach_the_item() {
        let src = "#[cfg(test)]\n#[derive(Debug)]\nstruct S {\n  x: u32,\n}\nfn live() {}";
        let r = regions(src);
        assert!(r.in_test(4));
        assert!(!r.in_test(6));
    }

    #[test]
    fn non_cfg_attributes_gate_nothing() {
        let src = "#[derive(Debug)]\nstruct S;\n#[inline]\nfn f() {}";
        let r = regions(src);
        assert!(r.test.is_empty());
        assert!(r.telemetry.is_empty());
    }

    #[test]
    fn braces_inside_parens_do_not_end_items() {
        let src = "#[cfg(test)]\nfn f() {\n  call(|| { inner() });\n  tail();\n}\nfn live() {}";
        let r = regions(src);
        assert!(r.in_test(4));
        assert!(!r.in_test(6));
    }
}
