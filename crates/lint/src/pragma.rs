//! The allow-pragma escape hatch and the panic-free certification.
//!
//! A violation the team has judged acceptable is waived in place:
//!
//! ```text
//! // hotspots-lint: allow(panic-path) reason="index bounded by construction"
//! ```
//!
//! The reason is *mandatory* — a waiver without a recorded judgement is
//! itself a violation (`bad-pragma`). A pragma suppresses matching
//! diagnostics on its own line (trailing form) and on the next line
//! that carries code (preceding form). Every use is counted and listed
//! in the run summary so waivers stay visible instead of rotting.
//!
//! The second form certifies a whole `fn` panic-free:
//!
//! ```text
//! // hotspots-lint: certifies(panic-free) reason="every index guarded above its use"
//! pub fn render(rows: &[Row]) -> String { ... }
//! ```
//!
//! Certification suppresses every D5 `panic-path` site lexically inside
//! the fn's body (one reviewed judgement per fn instead of one waiver
//! per site) and is *checked against the call graph* by R6
//! `panic-reachability`: a certified fn that can reach an unwaived,
//! uncertified panic site through calls is flagged, and a certification
//! that suppresses nothing is reported stale exactly like a stale
//! waiver.

use crate::lexer::{Comment, Token};
use crate::rules::RuleId;

/// What a pragma does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PragmaKind {
    /// `allow(<rule>)`: waives matching diagnostics at its site.
    Allow(RuleId),
    /// `certifies(panic-free)`: certifies the following fn panic-free.
    Certify,
}

/// One parsed pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// Line the pragma comment starts on.
    pub line: u32,
    pub kind: PragmaKind,
    /// The mandatory justification.
    pub reason: String,
    /// Lines this pragma suppresses (its own + the next code line).
    pub effective_lines: Vec<u32>,
}

impl Pragma {
    /// The waived rule, for `allow` pragmas.
    pub fn rule(&self) -> Option<RuleId> {
        match self.kind {
            PragmaKind::Allow(r) => Some(r),
            PragmaKind::Certify => None,
        }
    }

    /// The line a preceding-form pragma anchors to (its last effective
    /// line): for `certifies`, the line of the fn it certifies.
    pub fn anchor_line(&self) -> u32 {
        self.effective_lines.last().copied().unwrap_or(self.line)
    }
}

/// A malformed pragma: reported as a diagnostic, waives nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadPragma {
    pub line: u32,
    pub message: String,
}

const MARKER: &str = "hotspots-lint:";

/// Extracts pragmas from a file's comments. `tokens` supplies the "next
/// code line" each pragma extends to.
pub fn collect(comments: &[Comment], tokens: &[Token]) -> (Vec<Pragma>, Vec<BadPragma>) {
    let mut pragmas = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // Waivers are code annotations, not documentation: doc comments
        // (`///`, `//!`, `/**`, `/*!`) may *describe* the pragma format
        // without declaring one.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = c.text.find(MARKER) else {
            continue;
        };
        let body = c.text[at + MARKER.len()..].trim();
        match parse_body(body) {
            Ok((kind, reason)) => {
                // Trailing form (code on the pragma's own line) waives
                // that line only; a standalone comment line waives the
                // next line that carries code. Scope stays minimal
                // either way — one waiver, one site.
                let own_line_has_code = tokens.iter().any(|t| t.line == c.line);
                let effective_lines = if own_line_has_code {
                    vec![c.line]
                } else {
                    let next_code_line = tokens
                        .iter()
                        .map(|t| t.line)
                        .find(|&l| l > c.line)
                        .unwrap_or(c.line);
                    vec![c.line, next_code_line]
                };
                pragmas.push(Pragma {
                    line: c.line,
                    kind,
                    reason,
                    effective_lines,
                });
            }
            Err(msg) => bad.push(BadPragma {
                line: c.line,
                message: msg,
            }),
        }
    }
    (pragmas, bad)
}

/// Parses `allow(<rule>) reason="…"` or `certifies(panic-free)
/// reason="…"` after the marker.
fn parse_body(body: &str) -> Result<(PragmaKind, String), String> {
    let (kind, tail) = if let Some(rest) = body.strip_prefix("allow(") {
        let close = rest
            .find(')')
            .ok_or_else(|| "unclosed `allow(` in pragma".to_owned())?;
        let rule_name = rest[..close].trim();
        let rule = RuleId::parse(rule_name)
            .ok_or_else(|| format!("unknown rule `{rule_name}` in pragma"))?;
        (PragmaKind::Allow(rule), &rest[close + 1..])
    } else if let Some(rest) = body.strip_prefix("certifies(") {
        let close = rest
            .find(')')
            .ok_or_else(|| "unclosed `certifies(` in pragma".to_owned())?;
        let what = rest[..close].trim();
        if what != "panic-free" {
            return Err(format!(
                "unknown certification `{what}` (only `panic-free` exists)"
            ));
        }
        (PragmaKind::Certify, &rest[close + 1..])
    } else {
        return Err(format!(
            "expected `allow(<rule>) reason=\"…\"` or `certifies(panic-free) reason=\"…\"`, \
             got `{body}`"
        ));
    };
    let tail = tail.trim();
    let reason = tail
        .strip_prefix("reason=")
        .and_then(|r| r.trim().strip_prefix('"'))
        .and_then(|r| r.split('"').next())
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .ok_or_else(|| {
            "pragma is missing its mandatory reason (`reason=\"…\"` must be non-empty)".to_owned()
        })?;
    Ok((kind, reason.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn one(src: &str) -> Pragma {
        let lexed = lex(src);
        let (pragmas, bad) = collect(&lexed.comments, &lexed.tokens);
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(pragmas.len(), 1);
        pragmas.into_iter().next().unwrap()
    }

    #[test]
    fn trailing_pragma_covers_its_own_line() {
        let p = one("let x = v.unwrap(); // hotspots-lint: allow(panic-path) reason=\"bounded\"");
        assert_eq!(p.rule(), Some(RuleId::PanicPath));
        assert_eq!(p.reason, "bounded");
        assert!(p.effective_lines.contains(&1));
    }

    #[test]
    fn preceding_pragma_covers_next_code_line() {
        let src = "// hotspots-lint: allow(no-clock) reason=\"bench only\"\n\nlet t = now();";
        let p = one(src);
        assert_eq!(p.effective_lines, vec![1, 3]);
        assert_eq!(p.anchor_line(), 3);
    }

    #[test]
    fn certifies_pragma_parses_with_reason() {
        let src =
            "// hotspots-lint: certifies(panic-free) reason=\"all indices guarded\"\nfn f() {}\n";
        let p = one(src);
        assert_eq!(p.kind, PragmaKind::Certify);
        assert_eq!(p.rule(), None);
        assert_eq!(p.reason, "all indices guarded");
        assert_eq!(p.anchor_line(), 2);
    }

    #[test]
    fn certifies_requires_panic_free_and_reason() {
        let lexed = lex("// hotspots-lint: certifies(bug-free) reason=\"x\"\nfn f() {}");
        let (_, bad) = collect(&lexed.comments, &lexed.tokens);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("unknown certification"));

        let lexed = lex("// hotspots-lint: certifies(panic-free)\nfn f() {}");
        let (_, bad) = collect(&lexed.comments, &lexed.tokens);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("reason"));
    }

    #[test]
    fn rule_ids_parse_by_id_or_name() {
        assert_eq!(RuleId::parse("d1"), Some(RuleId::NoClock));
        assert_eq!(RuleId::parse("D5"), Some(RuleId::PanicPath));
        assert_eq!(
            RuleId::parse("unordered-iteration"),
            Some(RuleId::UnorderedIteration)
        );
        assert_eq!(RuleId::parse("r6"), Some(RuleId::PanicReachability));
        assert_eq!(
            RuleId::parse("rng-stream-discipline"),
            Some(RuleId::RngStreamDiscipline)
        );
        assert_eq!(RuleId::parse("nonsense"), None);
    }

    #[test]
    fn doc_comments_may_describe_pragmas_without_declaring_them() {
        let src = "/// Use `// hotspots-lint: allow(<rule>) reason=\"…\"` to waive.\n//! hotspots-lint: allow(broken\nfn f() {}\n";
        let lexed = lex(src);
        let (pragmas, bad) = collect(&lexed.comments, &lexed.tokens);
        assert!(pragmas.is_empty());
        assert!(bad.is_empty());
    }

    #[test]
    fn missing_reason_is_a_bad_pragma() {
        let lexed = lex("// hotspots-lint: allow(panic-path)\nlet x = 1;");
        let (pragmas, bad) = collect(&lexed.comments, &lexed.tokens);
        assert!(pragmas.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("reason"));
    }

    #[test]
    fn empty_reason_is_a_bad_pragma() {
        let lexed = lex("// hotspots-lint: allow(d3) reason=\"\"\n");
        let (_, bad) = collect(&lexed.comments, &lexed.tokens);
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn unknown_rule_is_a_bad_pragma() {
        let lexed = lex("// hotspots-lint: allow(d9) reason=\"x\"\n");
        let (_, bad) = collect(&lexed.comments, &lexed.tokens);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("unknown rule"));
    }
}
