//! The `hotspots-lint` command-line interface.
//!
//! ```text
//! cargo run -p hotspots-lint -- --workspace            # lint the tree
//! cargo run -p hotspots-lint -- --workspace --json     # machine output
//! cargo run -p hotspots-lint -- --workspace --sarif    # SARIF 2.1.0
//! cargo run -p hotspots-lint -- --workspace --threads 2
//! cargo run -p hotspots-lint -- --explain panic-reachability
//! cargo run -p hotspots-lint -- path/to/file.rs …      # lint given files
//! ```
//!
//! Exit status: 0 when clean, 1 on violations, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use hotspots_lint::rules::RuleId;
use hotspots_lint::scan;

const USAGE: &str = "\
hotspots-lint: statically enforce the workspace's determinism invariants

USAGE:
    hotspots-lint [--workspace] [--json | --sarif] [--threads N] [PATH ...]
    hotspots-lint --explain <rule>

OPTIONS:
    --workspace      lint every crate's src/ plus the root package
    --json           emit one JSON object instead of text diagnostics
    --sarif          emit a SARIF 2.1.0 log instead of text diagnostics
    --threads N      analyze files on N worker threads (output is
                     byte-identical to a serial run)
    --explain RULE   print a rule's guarantee, example, and waiver form
    --help           print this help

Rules: D1 no-clock, D2 unordered-iteration, D3 ambient-entropy,
D4 forbid-unsafe, D5 panic-path, R6 panic-reachability,
R7 rng-stream-discipline, R8 executor-isolation, R9 gate-consistency.
Waive a violation in place with
`// hotspots-lint: allow(<rule>) reason=\"…\"` (reason mandatory), or
certify a whole fn with
`// hotspots-lint: certifies(panic-free) reason=\"…\"` (checked by R6).
";

/// Prints one rule's documentation record (shared with SARIF metadata
/// and the DESIGN.md §6 table).
fn explain(rule: RuleId) -> String {
    let doc = rule.doc();
    format!(
        "{} ({})\n\nguarantee:\n  {}\n\nexample violation:\n  {}\n\nwaiver:\n  {}\n",
        rule.id(),
        rule.name(),
        doc.guarantee,
        doc.example.replace('\n', "\n  "),
        doc.waiver
    )
}

fn main() -> ExitCode {
    let mut workspace = false;
    let mut json = false;
    let mut sarif = false;
    let mut threads = 1usize;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--threads" => {
                let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("hotspots-lint: --threads needs a positive integer\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                threads = n.max(1);
            }
            "--explain" => {
                let Some(r) = args.next().as_deref().and_then(RuleId::parse) else {
                    eprintln!(
                        "hotspots-lint: --explain needs a rule id or name (e.g. `R6`, \
                         `panic-reachability`)\n\n{USAGE}"
                    );
                    return ExitCode::from(2);
                };
                print!("{}", explain(r));
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("hotspots-lint: unknown flag `{flag}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    if json && sarif {
        eprintln!("hotspots-lint: --json and --sarif are mutually exclusive\n\n{USAGE}");
        return ExitCode::from(2);
    }
    if !workspace && paths.is_empty() {
        eprintln!("hotspots-lint: nothing to lint (pass --workspace or file paths)\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = scan::find_workspace_root(&cwd).unwrap_or(cwd);
    let mut files = if workspace {
        scan::workspace_files(&root)
    } else {
        Vec::new()
    };
    for p in paths {
        let abs = if p.is_absolute() { p } else { root.join(p) };
        files.push(abs);
    }

    let report = scan::lint_files_with(&root, &files, threads);
    if json {
        println!("{}", report.render_json());
    } else if sarif {
        println!("{}", report.render_sarif());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
