//! The `hotspots-lint` command-line interface.
//!
//! ```text
//! cargo run -p hotspots-lint -- --workspace          # lint the tree
//! cargo run -p hotspots-lint -- --workspace --json   # machine output
//! cargo run -p hotspots-lint -- path/to/file.rs …    # lint given files
//! ```
//!
//! Exit status: 0 when clean, 1 on violations, 2 on usage errors.

use std::path::PathBuf;
use std::process::ExitCode;

use hotspots_lint::scan;

const USAGE: &str = "\
hotspots-lint: statically enforce the workspace's determinism invariants

USAGE:
    hotspots-lint [--workspace] [--json] [PATH ...]

OPTIONS:
    --workspace   lint every crate's src/ plus the root package
    --json        emit one JSON object instead of text diagnostics
    --help        print this help

Rules: D1 no-clock, D2 unordered-iteration, D3 ambient-entropy,
D4 forbid-unsafe, D5 panic-path. Waive a violation in place with
`// hotspots-lint: allow(<rule>) reason=\"…\"` (reason mandatory).
";

fn main() -> ExitCode {
    let mut workspace = false;
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("hotspots-lint: unknown flag `{flag}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    if !workspace && paths.is_empty() {
        eprintln!("hotspots-lint: nothing to lint (pass --workspace or file paths)\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = scan::find_workspace_root(&cwd).unwrap_or(cwd);
    let mut files = if workspace {
        scan::workspace_files(&root)
    } else {
        Vec::new()
    };
    for p in paths {
        let abs = if p.is_absolute() { p } else { root.join(p) };
        files.push(abs);
    }

    let report = scan::lint_files(&root, &files);
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
