//! The call-graph and workspace-level rule families R6–R9.
//!
//! The token rules (D1–D5) judge each line in isolation; the rules here
//! need the structure the [item parser](crate::items) and the
//! [call graph](crate::graph) recover:
//!
//! * **R6 `panic-reachability`** — checks `certifies(panic-free)`
//!   pragmas against the graph: a certified fn must not reach an
//!   unwaived, uncertified D5 site through any call chain, and a
//!   certification that suppresses nothing (and reaches no panic site
//!   at all) is itself a violation, so certifications rot as loudly as
//!   waivers do.
//! * **R7 `rng-stream-discipline`** — every RNG construction in
//!   sim/targeting library code must be fed from an id-keyed seed
//!   (`host_seed`, `derive_seed(…)`, `rng_seed`, …), and RNG state must
//!   not ride in `ShardJob`/`ShardDone` payloads or hide in an `Arc`.
//! * **R8 `executor-isolation`** — code reachable from
//!   `drive_shard`/`worker_loop` must not call observable-state
//!   mutators (observer dispatch, `Arc::make_mut` on engine flags);
//!   merging happens on the coordinator after `ShardDone`. Every
//!   channel `Sender<T>` needs a type-paired `Receiver<T>` in the same
//!   crate.
//! * **R9 `gate-consistency`** — items defined only under
//!   `#[cfg(feature = "telemetry")]` may be referenced only from
//!   equally gated (or test) code, so every feature combination
//!   compiles.
//!
//! All passes are deterministic: files are visited in analysis order,
//! and every set/map used is ordered (`BTreeMap`/`BTreeSet`).

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::CallGraph;
use crate::items::ItemSet;
use crate::lexer::{Token, TokenKind};
use crate::pragma::PragmaKind;
use crate::regions::Regions;
use crate::rules::{Diagnostic, FileCtx, FileRole, RuleId, HOT_PATH_CRATES};
use crate::scan::FileAnalysis;

/// RNG state types the workspace constructs (R7's subjects).
const RNG_TYPES: [&str; 7] = [
    "SplitMix",
    "StdRng",
    "Lcg32",
    "Prng32",
    "SlammerPrng",
    "WittyPrng",
    "MsvcrtRand",
];

/// Constructor names that seed an RNG.
const RNG_CTORS: [&str; 3] = ["new", "seed_from_u64", "from_seed"];

/// Crates where R7's construction discipline applies (the simulation
/// core; the `prng` crate *implements* the generators and is exempt).
const RNG_SCOPE: [&str; 2] = ["sim", "targeting"];

/// Observer/engine mutators banned on the shard execution path (R8).
/// Observer dispatch and shared-flag mutation belong to the
/// coordinator's merge phase, after `ShardDone` lands.
const SHARD_BANNED_METHODS: [&str; 3] = ["on_probe", "on_probe_batch", "on_infection"];

/// Fns whose bodies (and transitive callees) form the shard execution
/// path.
const SHARD_ENTRY_FNS: [&str; 2] = ["drive_shard", "worker_loop"];

// ---------------------------------------------------------------------
// R7 rng-stream-discipline (per-file; pure, so it parallelizes)
// ---------------------------------------------------------------------

/// Runs R7 over one file. Library code in sim/targeting only; test
/// regions and the seed-derivation helpers themselves are exempt.
pub fn check_rng_streams(
    ctx: &FileCtx,
    tokens: &[Token],
    regions: &Regions,
    items: &ItemSet,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if ctx.role != FileRole::Lib || !RNG_SCOPE.contains(&ctx.crate_name.as_str()) {
        return out;
    }

    // seed-derivation helpers construct RNGs from raw key material by
    // design: exempt fns whose name names the stream contract
    let in_seed_helper = |line: u32| {
        items
            .enclosing_fn(line)
            .map(|i| {
                let name = items.fns[i].name.to_ascii_lowercase();
                name.contains("seed") || name.contains("stream")
            })
            .unwrap_or(false)
    };

    for (i, t) in tokens.iter().enumerate() {
        if regions.in_test(t.line) {
            continue;
        }
        // `Rng::ctor( args )` — the args must name an id-keyed seed
        if t.kind == TokenKind::Ident
            && RNG_TYPES.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && tokens
                .get(i + 3)
                .is_some_and(|n| RNG_CTORS.contains(&n.text.as_str()))
            && tokens.get(i + 4).is_some_and(|n| n.is_punct('('))
            && !in_seed_helper(t.line)
            && !ctor_args_are_seeded(tokens, i + 4)
        {
            out.push(Diagnostic {
                rule: RuleId::RngStreamDiscipline,
                path: ctx.path.clone(),
                line: t.line,
                message: format!(
                    "`{}::{}` is not fed from an id-keyed seed (expected `host_seed`, \
                     `derive_seed(…)`, or another `*seed*` value); ad-hoc seeds break the \
                     SplitMix64 domain-separation contract",
                    t.text,
                    tokens[i + 3].text
                ),
            });
        }
        // `Arc< Rng …` — shared RNG state cannot be re-keyed per shard
        if t.is_ident("Arc")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('<'))
            && tokens
                .get(i + 2)
                .is_some_and(|n| RNG_TYPES.contains(&n.text.as_str()))
        {
            out.push(Diagnostic {
                rule: RuleId::RngStreamDiscipline,
                path: ctx.path.clone(),
                line: t.line,
                message: format!(
                    "`Arc<{}>` shares RNG state across owners without re-keying; derive a \
                     fresh id-keyed stream per consumer instead",
                    tokens[i + 2].text
                ),
            });
        }
    }

    // RNG state inside shard channel payloads crosses the shard
    // boundary: per-host streams must be re-derived from host ids on
    // the receiving side, never shipped
    for ty in &items.types {
        if ty.name != "ShardJob" && ty.name != "ShardDone" {
            continue;
        }
        let Some((start, end)) = ty.body else {
            continue;
        };
        for t in tokens[start..end.min(tokens.len())].iter() {
            if t.kind == TokenKind::Ident && RNG_TYPES.contains(&t.text.as_str()) {
                out.push(Diagnostic {
                    rule: RuleId::RngStreamDiscipline,
                    path: ctx.path.clone(),
                    line: t.line,
                    message: format!(
                        "RNG state (`{}`) in shard payload `{}` crosses the shard boundary; \
                         carry host ids and re-derive the stream on arrival",
                        t.text, ty.name
                    ),
                });
            }
        }
    }
    out
}

/// True when any argument of the call opening at `open_paren` names a
/// seed-carrying value (`host_seed`, `derive_seed`, `rng_seed`, …).
fn ctor_args_are_seeded(tokens: &[Token], open_paren: usize) -> bool {
    let mut depth = 0i32;
    let mut j = open_paren;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.kind == TokenKind::Ident && t.text.to_ascii_lowercase().contains("seed") {
            return true;
        }
        j += 1;
    }
    false
}

// ---------------------------------------------------------------------
// R6 panic-reachability (workspace; needs the call graph)
// ---------------------------------------------------------------------

/// What the certification pass decided.
#[derive(Debug, Default)]
pub struct CertOutcome {
    /// R6 violations: unattached pragmas, certified fns that reach live
    /// panic sites, stale certifications.
    pub diags: Vec<Diagnostic>,
    /// `(file index, raw-diagnostic index)` of every D5 site a
    /// certification suppresses.
    pub suppressed: BTreeSet<(usize, usize)>,
    /// `(file index, pragma index, certified fn, sites suppressed)` for
    /// every attached certification — the report's inventory.
    pub cert_uses: Vec<(usize, usize, String, u32)>,
}

/// Runs R6 over the analyzed workspace. `graph` must have been built
/// from `files` in order (node indices follow file order).
pub fn check_certifications(files: &[FileAnalysis], graph: &CallGraph) -> CertOutcome {
    let mut out = CertOutcome::default();

    // node index of (file, fn_idx): files contribute nodes in order
    let mut node_offset = Vec::with_capacity(files.len());
    let mut acc = 0usize;
    for f in files {
        node_offset.push(acc);
        acc += f.items.fns.len();
    }

    // attach each certifies(panic-free) pragma to its fn
    let mut certs: Vec<(usize, usize, usize)> = Vec::new(); // (file, pragma, fn)
    for (fi, f) in files.iter().enumerate() {
        for (pi, p) in f.pragmas.iter().enumerate() {
            if p.kind != PragmaKind::Certify {
                continue;
            }
            match attach_cert(&f.items, p.line, p.anchor_line()) {
                Some(k) => certs.push((fi, pi, k)),
                None => out.diags.push(Diagnostic {
                    rule: RuleId::PanicReachability,
                    path: f.rel_path.clone(),
                    line: p.line,
                    message: "`certifies(panic-free)` does not precede a fn item; attach it \
                              to the fn it certifies"
                        .to_owned(),
                }),
            }
        }
    }

    // suppress D5 sites lexically inside certified fns; tally per cert
    let mut cert_count = vec![0u32; certs.len()];
    for (fi, f) in files.iter().enumerate() {
        for (di, d) in f.raw.iter().enumerate() {
            if d.rule != RuleId::PanicPath {
                continue;
            }
            // innermost certified fn containing the site wins the tally
            let mut best: Option<(usize, u32)> = None; // (cert idx, span)
            for (ci, &(cf, _, k)) in certs.iter().enumerate() {
                if cf != fi {
                    continue;
                }
                let item = &files[cf].items.fns[k];
                if item.contains_line(d.line) {
                    let span = item.end_line - item.line;
                    let tighter = match best {
                        None => true,
                        Some((_, s)) => span < s,
                    };
                    if tighter {
                        best = Some((ci, span));
                    }
                }
            }
            if let Some((ci, _)) = best {
                cert_count[ci] += 1;
                out.suppressed.insert((fi, di));
            }
        }
    }

    // classify every D5 site's owning graph node: live sites (neither
    // waived nor certified) are what a certification must not reach
    let mut live_nodes: BTreeSet<usize> = BTreeSet::new();
    let mut any_nodes: BTreeSet<usize> = BTreeSet::new();
    for (fi, f) in files.iter().enumerate() {
        for (di, d) in f.raw.iter().enumerate() {
            if d.rule != RuleId::PanicPath {
                continue;
            }
            let Some(k) = f.items.enclosing_fn(d.line) else {
                continue;
            };
            let node = node_offset[fi] + k;
            any_nodes.insert(node);
            let waived = f.pragmas.iter().any(|p| {
                p.rule() == Some(RuleId::PanicPath) && p.effective_lines.contains(&d.line)
            });
            if !waived && !out.suppressed.contains(&(fi, di)) {
                live_nodes.insert(node);
            }
        }
    }

    // check each certification against the graph
    for (ci, &(fi, pi, k)) in certs.iter().enumerate() {
        let f = &files[fi];
        let item = &f.items.fns[k];
        let node = node_offset[fi] + k;
        let reach = graph.reachable(&[node], |_| true);
        let hits: BTreeSet<usize> = reach.intersection(&live_nodes).copied().collect();
        if !hits.is_empty() {
            let chain = graph
                .find_path(&[node], &hits, |_| true)
                .map(|path| {
                    path.iter()
                        .map(|&n| graph.nodes[n].item.qualified.clone())
                        .collect::<Vec<_>>()
                        .join(" → ")
                })
                .unwrap_or_default();
            let target = hits.iter().next().copied().unwrap_or(node);
            out.diags.push(Diagnostic {
                rule: RuleId::PanicReachability,
                path: f.rel_path.clone(),
                line: item.line,
                message: format!(
                    "`{}` is certified panic-free but can reach a panic site in `{}` \
                     ({}:{}); guard the call, certify the callee, or waive the site",
                    item.qualified,
                    graph.nodes[target].item.qualified,
                    files[graph.nodes[target].file].rel_path,
                    graph.nodes[target].item.line,
                ),
            });
            if !chain.is_empty() {
                if let Some(d) = out.diags.last_mut() {
                    d.message.push_str(&format!(" [via {chain}]"));
                }
            }
        } else if cert_count[ci] == 0 && reach.intersection(&any_nodes).next().is_none() {
            out.diags.push(Diagnostic {
                rule: RuleId::PanicReachability,
                path: f.rel_path.clone(),
                line: f.pragmas[pi].line,
                message: format!(
                    "stale certification: `{}` contains no panic site and reaches none — \
                     remove the `certifies(panic-free)` pragma",
                    item.qualified
                ),
            });
        }
        out.cert_uses
            .push((fi, pi, item.qualified.clone(), cert_count[ci]));
    }
    out
}

/// Finds the fn a certification at `pragma_line`/`anchor` certifies:
/// the fn whose signature starts on the anchor line, or (when
/// attributes sit between the pragma and the fn) the next fn below with
/// no other item in between.
fn attach_cert(items: &ItemSet, pragma_line: u32, anchor: u32) -> Option<usize> {
    // trailing form or pragma directly above the signature: the anchor
    // line falls inside the fn
    if let Some(k) = items.enclosing_fn(anchor) {
        if items.fns[k].line >= pragma_line {
            return Some(k);
        }
        // the anchor is inside an *earlier* fn's body: misplaced
        return None;
    }
    // the anchor is an attribute line between pragma and fn: take the
    // nearest fn below, unless a non-fn item intervenes
    let next = items
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.line > anchor)
        .min_by_key(|(_, f)| f.line)?;
    let intervening = items
        .types
        .iter()
        .any(|t| t.line > anchor && t.line < next.1.line);
    if intervening || next.1.line - anchor > 8 {
        return None;
    }
    Some(next.0)
}

// ---------------------------------------------------------------------
// R8 executor-isolation (workspace)
// ---------------------------------------------------------------------

/// Runs R8: channel pairing per crate, then mutator reachability from
/// the shard entry fns.
pub fn check_executor_isolation(files: &[FileAnalysis], graph: &CallGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // ---- channel pairing: every Sender<T> needs a Receiver<T> in the
    // same crate (and vice versa) ----
    type FirstSeen = BTreeMap<String, (usize, u32)>;
    let mut senders: BTreeMap<String, FirstSeen> = BTreeMap::new();
    let mut receivers: BTreeMap<String, FirstSeen> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        let Some(ctx) = &f.ctx else { continue };
        if ctx.role != FileRole::Lib {
            continue;
        }
        let toks = &f.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if f.regions.in_test(t.line) {
                continue;
            }
            let side = if t.is_ident("Sender") || t.is_ident("SyncSender") {
                Some(&mut senders)
            } else if t.is_ident("Receiver") {
                Some(&mut receivers)
            } else {
                None
            };
            let Some(map) = side else { continue };
            // `Sender< T` — key the pairing on the payload's head type
            if toks.get(i + 1).is_some_and(|n| n.is_punct('<')) {
                if let Some(ty) = toks.get(i + 2).filter(|n| n.kind == TokenKind::Ident) {
                    map.entry(ctx.crate_name.clone())
                        .or_default()
                        .entry(ty.text.clone())
                        .or_insert((fi, t.line));
                }
            }
        }
    }
    let crates: BTreeSet<&String> = senders.keys().chain(receivers.keys()).collect();
    for krate in crates {
        let empty = FirstSeen::new();
        let s = senders.get(krate).unwrap_or(&empty);
        let r = receivers.get(krate).unwrap_or(&empty);
        for (ty, &(fi, line)) in s {
            if !r.contains_key(ty) {
                out.push(Diagnostic {
                    rule: RuleId::ExecutorIsolation,
                    path: files[fi].rel_path.clone(),
                    line,
                    message: format!(
                        "`Sender<{ty}>` has no matching `Receiver<{ty}>` in crate `{krate}`: \
                         every channel send needs a type-paired recv"
                    ),
                });
            }
        }
        for (ty, &(fi, line)) in r {
            if !s.contains_key(ty) {
                out.push(Diagnostic {
                    rule: RuleId::ExecutorIsolation,
                    path: files[fi].rel_path.clone(),
                    line,
                    message: format!(
                        "`Receiver<{ty}>` has no matching `Sender<{ty}>` in crate `{krate}`: \
                         every channel recv needs a type-paired send"
                    ),
                });
            }
        }
    }

    // ---- mutator reachability: the shard execution path must not
    // touch observers or shared engine flags ----
    let in_hot_lib = |n: usize| {
        let f = &files[graph.nodes[n].file];
        f.ctx.as_ref().is_some_and(|c| {
            c.role == FileRole::Lib && HOT_PATH_CRATES.contains(&c.crate_name.as_str())
        }) && !f.regions.in_test(graph.nodes[n].item.line)
    };
    let mut seeds = Vec::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        if SHARD_ENTRY_FNS.contains(&n.item.name.as_str())
            && files[n.file]
                .ctx
                .as_ref()
                .is_some_and(|c| c.crate_name == "sim")
            && in_hot_lib(i)
        {
            seeds.push(i);
        }
    }
    for n in graph.reachable(&seeds, in_hot_lib) {
        let node = &graph.nodes[n];
        for call in &node.calls {
            let banned_method =
                call.is_method && SHARD_BANNED_METHODS.contains(&call.name.as_str());
            let banned_path = call.qualifier == "Arc" && call.name == "make_mut";
            if banned_method || banned_path {
                out.push(Diagnostic {
                    rule: RuleId::ExecutorIsolation,
                    path: files[node.file].rel_path.clone(),
                    line: call.line,
                    message: format!(
                        "`{}{}` inside `{}`, which is reachable from the shard execution \
                         path ({}): observable state must change only through the \
                         ShardDone merge on the coordinator",
                        if banned_path { "Arc::" } else { "." },
                        call.name,
                        node.item.qualified,
                        SHARD_ENTRY_FNS.join("/"),
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// R9 gate-consistency (workspace)
// ---------------------------------------------------------------------

/// Runs R9: names defined *only* under `#[cfg(feature = "telemetry")]`
/// may be referenced only from equally gated (or test) code.
pub fn check_gate_consistency(files: &[FileAnalysis]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // whole-file gates: `#[cfg(feature = "telemetry")] mod x;` gates
    // every item in x.rs / x/mod.rs
    let mut gated_mods: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new(); // crate → mod names
    for f in files {
        let Some(ctx) = &f.ctx else { continue };
        for (name, line) in &f.items.mod_decls {
            if f.regions.in_telemetry(*line) {
                gated_mods
                    .entry(ctx.crate_name.as_str())
                    .or_default()
                    .insert(name.clone());
            }
        }
    }
    let file_gated: Vec<bool> = files
        .iter()
        .map(|f| {
            let Some(ctx) = &f.ctx else { return false };
            let Some(mods) = gated_mods.get(ctx.crate_name.as_str()) else {
                return false;
            };
            module_stems(&f.rel_path).iter().any(|s| mods.contains(s))
        })
        .collect();

    // gated iff *every* definition of the name is telemetry-gated
    let mut gated_defs: BTreeMap<String, bool> = BTreeMap::new();
    let mut def_sites: BTreeMap<(usize, String), BTreeSet<u32>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        let Some(ctx) = &f.ctx else { continue };
        if ctx.role != FileRole::Lib {
            continue;
        }
        let defs = f
            .items
            .fns
            .iter()
            .map(|x| (x.name.clone(), x.line))
            .chain(f.items.types.iter().map(|x| (x.name.clone(), x.line)));
        for (name, line) in defs {
            if f.regions.in_test(line) {
                continue;
            }
            let gated = file_gated[fi] || f.regions.in_telemetry(line);
            gated_defs
                .entry(name.clone())
                .and_modify(|g| *g &= gated)
                .or_insert(gated);
            def_sites.entry((fi, name)).or_default().insert(line);
        }
    }

    for (fi, f) in files.iter().enumerate() {
        let Some(ctx) = &f.ctx else { continue };
        if ctx.role == FileRole::Support || file_gated[fi] {
            continue;
        }
        for t in &f.lexed.tokens {
            if t.kind != TokenKind::Ident
                || !gated_defs.get(&t.text).copied().unwrap_or(false)
                || f.regions.in_telemetry(t.line)
                || f.regions.in_test(t.line)
            {
                continue;
            }
            // the definition itself is not a reference
            if def_sites
                .get(&(fi, t.text.clone()))
                .is_some_and(|lines| lines.contains(&t.line))
            {
                continue;
            }
            out.push(Diagnostic {
                rule: RuleId::GateConsistency,
                path: f.rel_path.clone(),
                line: t.line,
                message: format!(
                    "`{}` is defined only under `#[cfg(feature = \"telemetry\")]` but \
                     referenced from ungated code: this fails to compile without the \
                     feature — gate the reference identically",
                    t.text
                ),
            });
        }
    }
    out
}

/// The module names a file path can satisfy: `…/foo.rs` → `foo`,
/// `…/foo/mod.rs` → `foo` (and the directory chain for nested mods).
fn module_stems(rel_path: &str) -> Vec<String> {
    let mut stems = Vec::new();
    let parts: Vec<&str> = rel_path.split('/').collect();
    if let Some(last) = parts.last() {
        if let Some(stem) = last.strip_suffix(".rs") {
            if stem == "mod" {
                if parts.len() >= 2 {
                    stems.push(parts[parts.len() - 2].to_owned());
                }
            } else {
                stems.push(stem.to_owned());
            }
        }
    }
    stems
}
