//! A conservative intra-workspace call graph.
//!
//! Nodes are the `fn` items the [item parser](crate::items) recovered;
//! edges come from syntactic call sites (`name(...)`, `.name(...)`,
//! `Path::name(...)`) resolved by *name*: a call to `name` gets an edge
//! to **every** workspace fn called `name`. That over-approximation is
//! deliberate — without type information it is the only sound choice
//! for reachability rules (R6 certification, R8 executor isolation):
//! it can produce spurious reachability (a same-named fn in an
//! unrelated crate) but never misses a real intra-workspace call by
//! static name. What it *cannot* see: calls through closure values and
//! fn pointers (the call site names the variable, not the target),
//! macro-generated calls, and calls into std/vendored code (no nodes
//! there). DESIGN.md §6 records these caveats.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::{is_keyword, FnItem, ItemSet};
use crate::lexer::{Token, TokenKind};

/// One syntactic call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (method or fn; the last path segment).
    pub name: String,
    /// For `Path::name(...)` calls, the qualifying segment (`Arc` in
    /// `Arc::make_mut`); empty otherwise.
    pub qualifier: String,
    pub line: u32,
    /// True for `.name(...)` method-call syntax.
    pub is_method: bool,
}

/// Extracts the call sites lexically inside `body` (a token index range
/// from a [`FnItem`]).
pub fn call_sites(tokens: &[Token], body: (usize, usize)) -> Vec<CallSite> {
    let (start, end) = body;
    let end = end.min(tokens.len());
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident && !is_keyword(&t.text) {
            // a call is `ident (`; macro invocations `ident ! (` are
            // not calls here (D5 covers the panicking ones), and
            // `fn ident (` is a definition, not a call.
            let next_is_paren = tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
            let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
            let is_def = prev.is_some_and(|p| p.is_ident("fn"));
            if next_is_paren && !is_def {
                let is_method = prev.is_some_and(|p| p.is_punct('.'));
                // `Path::name(` — look back across `::`
                let qualifier = if !is_method
                    && i >= 3
                    && tokens[i - 1].is_punct(':')
                    && tokens[i - 2].is_punct(':')
                    && tokens[i - 3].kind == TokenKind::Ident
                {
                    tokens[i - 3].text.clone()
                } else {
                    String::new()
                };
                out.push(CallSite {
                    name: t.text.clone(),
                    qualifier,
                    line: t.line,
                    is_method,
                });
            }
        }
        i += 1;
    }
    out
}

/// A fn node in the workspace graph: which file it came from plus its
/// parsed item.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the owning file in the analysis list.
    pub file: usize,
    pub item: FnItem,
    pub calls: Vec<CallSite>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// name → node indices of every fn with that name.
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph from per-file item sets and token streams.
    /// `files` pairs each file's tokens with its parsed items, in
    /// analysis order.
    pub fn build(files: &[(&[Token], &ItemSet)]) -> CallGraph {
        let mut g = CallGraph::default();
        for (file_idx, (tokens, items)) in files.iter().enumerate() {
            for f in &items.fns {
                let calls = f.body.map(|b| call_sites(tokens, b)).unwrap_or_default();
                let idx = g.nodes.len();
                g.nodes.push(FnNode {
                    file: file_idx,
                    item: f.clone(),
                    calls,
                });
                g.by_name.entry(f.name.clone()).or_default().push(idx);
            }
        }
        g
    }

    /// All nodes whose fn is named `name`.
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The node for the fn lexically containing `line` in `file`
    /// (innermost on nesting).
    pub fn node_at(&self, file: usize, line: u32) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.file == file && n.item.contains_line(line) {
                let tighter = match best {
                    None => true,
                    Some(b) => {
                        let cur = &self.nodes[b].item;
                        (n.item.end_line - n.item.line) < (cur.end_line - cur.line)
                    }
                };
                if tighter {
                    best = Some(i);
                }
            }
        }
        best
    }

    /// Breadth-first forward reachability from `seeds` (node indices),
    /// following name-resolved call edges, optionally restricted to
    /// nodes for which `admit` returns true. Seeds are always included.
    pub fn reachable(&self, seeds: &[usize], admit: impl Fn(usize) -> bool) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue: Vec<usize> = Vec::new();
        for &s in seeds {
            if s < self.nodes.len() && seen.insert(s) {
                queue.push(s);
            }
        }
        while let Some(n) = queue.pop() {
            for call in &self.nodes[n].calls {
                for &callee in self.named(&call.name) {
                    if admit(callee) && seen.insert(callee) {
                        queue.push(callee);
                    }
                }
            }
        }
        seen
    }

    /// Finds one call path (as a list of node indices, seed first) from
    /// any seed to any node in `targets`, for diagnostics. Returns
    /// `None` when unreachable.
    pub fn find_path(
        &self,
        seeds: &[usize],
        targets: &BTreeSet<usize>,
        admit: impl Fn(usize) -> bool,
    ) -> Option<Vec<usize>> {
        let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = Default::default();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        for &s in seeds {
            if s < self.nodes.len() && seen.insert(s) {
                queue.push_back(s);
            }
        }
        while let Some(n) = queue.pop_front() {
            if targets.contains(&n) {
                let mut path = vec![n];
                let mut cur = n;
                while let Some(&p) = prev.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for call in &self.nodes[n].calls {
                for &callee in self.named(&call.name) {
                    if admit(callee) && seen.insert(callee) {
                        prev.insert(callee, n);
                        queue.push_back(callee);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse;
    use crate::lexer::lex;

    fn graph(src: &str) -> (CallGraph, crate::lexer::Lexed, ItemSet) {
        let lexed = lex(src);
        let items = parse(&lexed.tokens);
        let g = CallGraph::build(&[(&lexed.tokens, &items)]);
        (g, lexed, items)
    }

    #[test]
    fn direct_method_and_path_calls_are_edges() {
        let src = "fn a() { b(); x.c(); Arc::make_mut(&mut y); }\nfn b() {}\nfn c() {}";
        let (g, _, _) = graph(src);
        let a = g.named("a")[0];
        let names: Vec<&str> = g.nodes[a].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["b", "c", "make_mut"]);
        assert_eq!(g.nodes[a].calls[2].qualifier, "Arc");
        assert!(g.nodes[a].calls[1].is_method);
    }

    #[test]
    fn reachability_follows_chains_and_name_fallback() {
        let src = "fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}";
        let (g, _, _) = graph(src);
        let top = g.named("top")[0];
        let reach = g.reachable(&[top], |_| true);
        assert!(reach.contains(&g.named("leaf")[0]));
        assert!(!reach.contains(&g.named("island")[0]));
    }

    #[test]
    fn find_path_reports_a_chain() {
        let src = "fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}";
        let (g, _, _) = graph(src);
        let top = g.named("top")[0];
        let leaf = g.named("leaf")[0];
        let targets: BTreeSet<usize> = [leaf].into_iter().collect();
        let path = g.find_path(&[top], &targets, |_| true).expect("reachable");
        let names: Vec<&str> = path
            .iter()
            .map(|&n| g.nodes[n].item.name.as_str())
            .collect();
        assert_eq!(names, vec!["top", "mid", "leaf"]);
    }

    #[test]
    fn macro_invocations_and_definitions_are_not_calls() {
        let src = "fn a() { panic!(\"x\"); }\nfn b() {}";
        let (g, _, _) = graph(src);
        let a = g.named("a")[0];
        assert!(g.nodes[a].calls.is_empty());
    }
}
