//! Fixture corpus harness.
//!
//! Each fixture under `tests/fixtures/` is a small Rust source that
//! declares, in its first line, the workspace path it should be linted
//! *as* (`// lint-as: crates/sim/src/engine.rs`), since rule scoping
//! depends on crate and role. Expected diagnostics are marked inline
//! with `//~ <rule-id>` on the offending line; a file without markers
//! must lint clean. The harness compares the (line, rule) multiset the
//! linter produces against the markers — both missing and spurious
//! diagnostics fail.

use std::fs;
use std::path::{Path, PathBuf};

use hotspots_lint::scan::{lint_source, FileReport};

/// (fixture file, lint-as path, report, expected (line, rule-id)).
struct Case {
    name: String,
    report: FileReport,
    expected: Vec<(u32, String)>,
}

fn load_cases() -> Vec<Case> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut files = Vec::new();
    collect(&dir, &mut files);
    files.sort();
    assert!(
        files.len() >= 24,
        "fixture corpus went missing: found only {} files",
        files.len()
    );
    files
        .into_iter()
        .map(|f| {
            let src = fs::read_to_string(&f).expect("fixture readable");
            let name = f
                .strip_prefix(&dir)
                .expect("under fixtures dir")
                .to_string_lossy()
                .replace('\\', "/");
            let lint_as = src
                .lines()
                .next()
                .and_then(|l| l.split("lint-as:").nth(1))
                .and_then(|rest| rest.split_whitespace().next())
                .unwrap_or_else(|| panic!("{name}: first line must declare `// lint-as: <path>`"))
                .to_owned();
            let mut expected: Vec<(u32, String)> = Vec::new();
            for (i, line) in src.lines().enumerate() {
                if let Some(marks) = line.split("//~").nth(1) {
                    for rule in marks.split_whitespace() {
                        expected.push((i as u32 + 1, rule.to_owned()));
                    }
                }
            }
            expected.sort();
            Case {
                name,
                report: lint_source(&lint_as, &src),
                expected,
            }
        })
        .collect()
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("fixtures dir exists") {
        let p = entry.expect("dir entry").path();
        if p.is_dir() {
            collect(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

#[test]
fn every_fixture_produces_exactly_its_marked_diagnostics() {
    for case in load_cases() {
        let mut actual: Vec<(u32, String)> = case
            .report
            .diagnostics
            .iter()
            .map(|d| (d.line, d.rule.id().to_owned()))
            .collect();
        actual.sort();
        assert_eq!(
            actual, case.expected,
            "{}: diagnostics (left) differ from `//~` markers (right); full report: {:#?}",
            case.name, case.report.diagnostics
        );
    }
}

#[test]
fn waived_fixture_reports_both_pragma_forms_as_used() {
    let cases = load_cases();
    let waived = cases
        .iter()
        .find(|c| c.name == "pragma/waived.rs")
        .expect("waived fixture present");
    assert_eq!(waived.report.used_pragmas.len(), 2, "standalone + trailing");
    assert!(waived.report.unused_pragmas.is_empty());
    assert!(waived
        .report
        .used_pragmas
        .iter()
        .all(|(p, n)| !p.reason.is_empty() && *n == 1));
}

#[test]
fn stale_fixture_reports_its_pragma_as_unused() {
    let cases = load_cases();
    let stale = cases
        .iter()
        .find(|c| c.name == "pragma/stale.rs")
        .expect("stale fixture present");
    assert!(stale.report.diagnostics.is_empty());
    assert!(stale.report.used_pragmas.is_empty());
    assert_eq!(stale.report.unused_pragmas.len(), 1);
}

#[test]
fn fixture_paths_themselves_are_exempt_from_scanning() {
    // The corpus deliberately violates every rule; a workspace scan
    // must skip it (classify returns None for /fixtures/ paths).
    let src =
        fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/d5/bad.rs"))
            .expect("fixture readable");
    let report = lint_source("crates/lint/tests/fixtures/d5/bad.rs", &src);
    assert!(report.diagnostics.is_empty());
}
