//! Property tests: the lexer and the full lint pipeline must be total
//! — no input, however mangled, may panic them. The linter runs in CI
//! over sources mid-edit; a panic there would mask real diagnostics.

use proptest::prelude::*;

use hotspots_lint::lexer::lex;
use hotspots_lint::scan::lint_source;

proptest! {
    #[test]
    fn lexer_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let src = String::from_utf8_lossy(&bytes);
        let lexed = lex(&src);
        // every token must carry a plausible line number
        let max_line = src.lines().count().max(1) as u32;
        for t in &lexed.tokens {
            prop_assert!(t.line >= 1 && t.line <= max_line);
        }
    }

    #[test]
    fn lexer_never_panics_on_quote_and_comment_soup(
        picks in proptest::collection::vec(0u8..18, 0..64),
    ) {
        const ATOMS: [&str; 18] = [
            "\"", "'", "r#\"", "\"#", "//", "/*", "*/", "\\", "\n",
            "b'", "'a", "0x", "1.", "..", "ident", "#!", "[", "]",
        ];
        let src: String = picks.iter().map(|&i| ATOMS[i as usize]).collect();
        let _ = lex(&src);
    }

    #[test]
    fn lint_pipeline_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let src = String::from_utf8_lossy(&bytes);
        // a hot-path lib root exercises every rule at once
        let _ = lint_source("crates/sim/src/lib.rs", &src);
    }
}
