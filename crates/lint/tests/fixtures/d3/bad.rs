// lint-as: crates/stats/src/sampling.rs
// Ambient entropy: unseeded generators and randomized hashing. D3
// applies everywhere, test modules included — a test seeded from the
// environment cannot pin determinism.

use rand::rngs::OsRng; //~ D3
use std::collections::hash_map::RandomState; //~ D3

pub fn noise() -> u64 {
    let mut rng = rand::thread_rng(); //~ D3
    rng.gen()
}

pub fn reseed() -> StdRng {
    StdRng::from_entropy() //~ D3
}

#[cfg(test)]
mod tests {
    #[test]
    fn nondeterministic_test_is_still_flagged() {
        let _ = rand::thread_rng(); //~ D3
    }
}
