// lint-as: crates/stats/src/sampling.rs
// Seeded, accounted randomness: id-keyed streams derived from the
// scenario seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn stream(seed: u64, host_id: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ host_id.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

pub fn mention() -> &'static str {
    "thread_rng and RandomState in a string are data, not entropy"
}
