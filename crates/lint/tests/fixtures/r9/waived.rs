// lint-as: crates/sim/src/metrics_waived.rs
// An ungated helper signature kept for rustdoc linking; the judgement
// is recorded in place.

#[cfg(feature = "telemetry")]
pub struct PhaseLog {
    pub steps: u64,
}

// hotspots-lint: allow(gate-consistency) reason="every call site is telemetry-gated"
pub fn reset(log: &mut PhaseLog) {
    log.steps = 0;
}
