// lint-as: crates/sim/src/metrics_ok.rs
// Gated definitions referenced from equally gated (or test) code, and
// ungated items next to them, are all consistent.

#[cfg(feature = "telemetry")]
pub struct PhaseLog {
    pub steps: u64,
}

#[cfg(feature = "telemetry")]
pub fn record(log: &mut PhaseLog) {
    log.steps += 1;
}

pub struct Summary {
    pub total: u64,
}

pub fn summarize(s: &Summary) -> u64 {
    s.total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gated_type_is_fine_in_tests() {
        let mut log = PhaseLog { steps: 0 };
        record(&mut log);
        assert_eq!(log.steps, 1);
    }
}
