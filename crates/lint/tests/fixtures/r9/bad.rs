// lint-as: crates/sim/src/metrics.rs
// `PhaseLog` exists only when the telemetry feature is on: an ungated
// reference fails to compile in the default build.

#[cfg(feature = "telemetry")]
pub struct PhaseLog {
    pub steps: u64,
}

pub fn record(log: &mut PhaseLog) { //~ R9
    log.steps += 1;
}
