// lint-as: crates/sim/src/exec_bad.rs
// The shard execution path may not touch observers or shared flags
// (those belong to the coordinator's merge), and every channel side
// needs its type-paired counterpart.

pub struct Coordinator {
    pub jobs: Sender<ShardJob>, //~ R8
}

pub fn drive_shard(shard: &mut Shard, obs: &mut Obs) {
    step(shard, obs);
}

fn step(shard: &mut Shard, obs: &mut Obs) {
    obs.on_probe(shard.t); //~ R8
    Arc::make_mut(&mut shard.flags).halt = true; //~ R8
}
