// lint-as: crates/sim/src/exec_waived.rs
// An accounted exception: a probe counter bumped on the shard path,
// waived where it happens.

pub fn drive_shard(shard: &mut Shard, obs: &mut Obs) {
    // hotspots-lint: allow(executor-isolation) reason="counter is shard-local and merged later"
    obs.on_probe(shard.t);
}
