// lint-as: crates/sim/src/exec_ok.rs
// Shard work communicates through paired channels; observer dispatch
// stays on the coordinator, outside the shard cone.

pub struct Pool {
    pub jobs: Sender<ShardJob>,
    pub done: Receiver<ShardDone>,
}

pub struct Worker {
    pub jobs: Receiver<ShardJob>,
    pub done: Sender<ShardDone>,
}

pub fn worker_loop(w: &Worker) {
    while let Ok(job) = w.jobs.recv() {
        let out = run_job(job);
        let _ = w.done.send(out);
    }
}

fn run_job(job: ShardJob) -> ShardDone {
    ShardDone { shard: job.shard }
}

pub fn merge(pool: &Pool, obs: &mut Obs) {
    while let Ok(done) = pool.done.recv() {
        obs.on_probe_batch(done.shard);
    }
}

pub struct ShardJob {
    pub shard: u32,
}

pub struct ShardDone {
    pub shard: u32,
}
