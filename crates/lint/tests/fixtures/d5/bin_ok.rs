// lint-as: crates/experiments/src/bin/fig9.rs
// Binaries are the process boundary: unwrap/expect are allowed (an
// exit with a message is the correct failure mode there).

fn main() {
    let arg = std::env::args().nth(1).expect("usage: fig9 <spec>");
    let n: u32 = arg.parse().unwrap();
    if n == 0 {
        panic!("n must be positive");
    }
}
