// lint-as: crates/stats/src/summary.rs
// Non-panicking siblings, fields that share a name with the panicky
// methods, and test-module unwraps are all fine.

pub struct Probe {
    pub expect: u32,
}

pub fn first(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}

pub fn fallback(x: Option<u32>, p: &Probe) -> u32 {
    x.unwrap_or_else(|| p.expect)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let x: Option<u32> = Some(3);
        assert_eq!(x.unwrap(), 3);
    }
}
