// lint-as: crates/stats/src/summary.rs
// Every panicking escape hatch D5 knows about, in library code.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() //~ D5
}

pub fn named(x: Option<u32>) -> u32 {
    x.expect("present") //~ D5
}

pub fn boom() -> ! {
    panic!("library code must not panic") //~ D5
}

pub fn later() -> u32 {
    todo!() //~ D5
}

pub fn never() -> u32 {
    unimplemented!() //~ D5
}
