// lint-as: crates/experiments/src/render.rs
// Hash-ordered collections in report-feeding code: iteration order
// would leak into rendered output.

use std::collections::HashMap; //~ D2
use std::collections::HashSet; //~ D2

pub fn per_block_rates() -> HashMap<String, f64> { //~ D2
    let mut out = HashMap::new(); //~ D2
    out.insert("A".to_owned(), 1.0);
    out
}

pub fn unique_labels(labels: &[&str]) -> HashSet<String> { //~ D2
    labels.iter().map(|l| (*l).to_owned()).collect::<HashSet<_>>() //~ D2
}
