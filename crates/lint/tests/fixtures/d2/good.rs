// lint-as: crates/experiments/src/render.rs
// Ordered collections in report code; hash collections are fine
// inside test modules (asserts, not output).

use std::collections::{BTreeMap, BTreeSet};

pub fn per_block_rates() -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    out.insert("A".to_owned(), 1.0);
    out
}

pub fn unique_labels(labels: &[&str]) -> BTreeSet<String> {
    labels.iter().map(|l| (*l).to_owned()).collect()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn dedup_assertion_uses_a_set() {
        let s: HashSet<u32> = [1, 2, 2].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
