// lint-as: crates/sim/src/streams_waived.rs
// A generator that deliberately replays a historical constant; the
// waiver records the judgement in place.

pub fn historical() -> Lcg32 {
    // hotspots-lint: allow(rng-stream-discipline) reason="replays Slammer's published constant"
    Lcg32::new(0x0019_660D)
}
