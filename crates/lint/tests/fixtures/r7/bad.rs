// lint-as: crates/sim/src/streams.rs
// Ad-hoc seeds, shared RNG state, and RNG riding in shard payloads all
// break the id-keyed stream discipline.

pub fn draw(hosts: u32) -> u32 {
    let mut g = SplitMix::new(42); //~ R7
    g.next_u32() % hosts
}

pub struct Shared {
    pub rng: Arc<StdRng>, //~ R7
}

pub struct ShardJob {
    pub lo: u32,
    pub rng: Lcg32, //~ R7
}
