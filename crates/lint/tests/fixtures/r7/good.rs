// lint-as: crates/sim/src/streams_ok.rs
// Id-keyed construction, seed-derivation helpers, RNG-free shard
// payloads, and test code are all within the discipline.

pub fn host_stream(host_seed: u64) -> SplitMix {
    SplitMix::new(host_seed)
}

pub fn keyed(id: u32, base: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(base, id))
}

fn derive_seed(base: u64, id: u32) -> u64 {
    base ^ (u64::from(id) << 1)
}

pub struct ShardJob {
    pub host_lo: u32,
    pub host_hi: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_literal_is_fine_in_tests() {
        let mut g = SplitMix::new(7);
        assert!(g.next_u32() < u32::MAX);
    }
}
