// lint-as: crates/stats/src/reach.rs
// A certification claims the whole call cone: `top` reaches `leaf`'s
// unwaived panic site through `mid`, so R6 rejects the claim. A pragma
// that precedes no fn at all cannot attach and is flagged where it
// stands.

// hotspots-lint: certifies(panic-free) reason="only forwards to mid"
pub fn top(x: Option<u32>) -> u32 { //~ R6
    mid(x)
}

fn mid(x: Option<u32>) -> u32 {
    leaf(x)
}

fn leaf(x: Option<u32>) -> u32 {
    x.expect("present") //~ D5
}

// hotspots-lint: certifies(panic-free) reason="precedes a const, not a fn" //~ R6
pub const ANSWER: u32 = 42;
