// lint-as: crates/stats/src/reach_ok.rs
// Certified fns whose own sites are suppressed and whose callees'
// sites are waived lint clean: suppression is lexical, reachability
// honours waivers.

// hotspots-lint: certifies(panic-free) reason="the literal always parses"
pub fn render() -> u32 {
    "42".parse().unwrap()
}

// hotspots-lint: certifies(panic-free) reason="callee's site is waived where it lives"
pub fn forward(x: Option<u32>) -> u32 {
    guarded(x)
}

fn guarded(x: Option<u32>) -> u32 {
    // hotspots-lint: allow(panic-path) reason="callers check is_some first"
    x.unwrap()
}
