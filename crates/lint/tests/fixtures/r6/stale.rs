// lint-as: crates/stats/src/reach_stale.rs
// A certification that suppresses nothing and reaches no panic site is
// dead weight: R6 reports it so it gets removed, exactly like a stale
// waiver.

// hotspots-lint: certifies(panic-free) reason="sum cannot panic" //~ R6
pub fn total(xs: &[u32]) -> u64 {
    xs.iter().map(|&x| u64::from(x)).sum()
}
