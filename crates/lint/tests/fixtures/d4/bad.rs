// lint-as: crates/nofences/src/lib.rs //~ D4
// A library crate root with no `#![forbid(unsafe_code)]`. D4 anchors
// its diagnostic to line 1 of the lib root.

pub fn harmless() -> u32 {
    7
}
