// lint-as: crates/fenced/src/lib.rs
//! Doc comment first is fine; the forbid just has to be present.

#![forbid(unsafe_code)]

pub fn harmless() -> u32 {
    7
}
