// lint-as: crates/stats/src/summary.rs
// Malformed pragmas are themselves violations (D0, unwaivable):
// a missing reason, an unknown rule, and garbage syntax.

// hotspots-lint: allow(panic-path) //~ D0
pub fn no_reason(x: Option<u32>) -> u32 {
    x.unwrap() //~ D5
}

// hotspots-lint: allow(made-up-rule) reason="not a rule" //~ D0
pub fn unknown_rule() -> u32 {
    1
}

// hotspots-lint: frobnicate //~ D0
pub fn garbage() -> u32 {
    2
}
