// lint-as: crates/stats/src/summary.rs
// A pragma whose violation was since fixed: no diagnostics, but the
// waiver must be reported as stale so it gets removed.

pub fn fixed(xs: &[u32]) -> u32 {
    // hotspots-lint: allow(panic-path) reason="left behind after a refactor"
    xs.first().copied().unwrap_or(0)
}
