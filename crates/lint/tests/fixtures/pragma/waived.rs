// lint-as: crates/stats/src/summary.rs
// Both pragma forms: a standalone comment waives the next code line,
// a trailing comment waives its own line. All violations here are
// waived, so the file lints clean with two used waivers.

pub fn checked(xs: &[u32]) -> u32 {
    if xs.is_empty() {
        return 0;
    }
    // hotspots-lint: allow(panic-path) reason="guarded by the is_empty check above"
    *xs.first().unwrap()
}

pub fn trailing(x: Option<u32>) -> u32 {
    x.expect("fixture") // hotspots-lint: allow(panic-path) reason="trailing form demo"
}
