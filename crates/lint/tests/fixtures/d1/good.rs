// lint-as: crates/sim/src/engine.rs
// Clock reads are fine when telemetry-gated, in test modules, or in
// strings; bare `Instant` type mentions are not calls.

#[cfg(feature = "telemetry")]
use std::time::Instant;

pub fn step() {
    #[cfg(feature = "telemetry")]
    let t0 = Instant::now();
    #[cfg(feature = "telemetry")]
    {
        let _dt = t0.elapsed();
        let _again = Instant::now();
    }
    let _msg = "Instant::now and SystemTime in a string are data";
}

#[cfg(feature = "telemetry")]
pub fn gated_fn() -> Instant {
    Instant::now()
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let _t = Instant::now();
    }
}
