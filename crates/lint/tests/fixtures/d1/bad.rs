// lint-as: crates/sim/src/engine.rs
// Ungated clock reads in a hot-path crate: every one is a D1 hit.

use std::time::{Instant, SystemTime}; //~ D1

pub fn step() -> f64 {
    let t0 = Instant::now(); //~ D1
    let _wall = SystemTime::now(); //~ D1
    t0.elapsed().as_secs_f64()
}
