//! The shipped tree must lint clean: this is the same scan the CI
//! `lint-invariants` job runs, wired into `cargo test` so a violation
//! fails locally before it fails remotely.

use std::path::Path;

use hotspots_lint::scan::{find_workspace_root, lint_files, lint_files_with, workspace_files};

#[test]
fn workspace_lints_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let files = workspace_files(&root);
    assert!(
        files.len() >= 50,
        "workspace scan found only {} files — discovery is broken",
        files.len()
    );
    let report = lint_files(&root, &files);
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report.render_text()
    );
    // every waiver in the tree must carry a reason
    for (p, path, _) in &report.used_pragmas {
        assert!(
            !p.reason.trim().is_empty(),
            "{path}:{}: waiver without a reason",
            p.line
        );
    }
    // and none may be stale
    assert!(
        report.unused_pragmas.is_empty(),
        "stale waivers present:\n{}",
        report.render_text()
    );
}

/// Retiring a waiver is one-way. The typed-error hardening of the run
/// path removed the `RunSet` and `preset_main` panic waivers, and the
/// R6 certification burn-down converted 33 more D5 waivers (corpus
/// generation, slammer cycle maps, figure rendering, the ablation
/// runner) into 17 call-graph-checked `certifies(panic-free)` pragmas.
/// This pin keeps any retired waiver from silently returning as a new
/// `expect` with a fresh pragma: the count may only fall; raising it
/// takes a deliberate edit here alongside the new waiver's
/// justification.
const WAIVER_CEILING: usize = 28;

#[test]
fn workspace_waiver_count_is_pinned() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let files = workspace_files(&root);
    let report = lint_files(&root, &files);
    let waivers: Vec<String> = report
        .used_pragmas
        .iter()
        .map(|(p, path, _)| format!("{path}:{}", p.line))
        .collect();
    assert!(
        waivers.len() <= WAIVER_CEILING,
        "workspace waiver count rose above the {WAIVER_CEILING} ceiling; current waivers:\n{}",
        waivers.join("\n")
    );
}

/// The serve crate (PR 10) joined the workspace under the full rule
/// set with **zero** waivers: its library code routes every failure
/// through `Result`, uses logical sequence numbers instead of clocks
/// for LRU ordering, and keeps its channel types paired. This pins
/// both halves — the scan actually covers the crate, and no waiver
/// creeps into it.
#[test]
fn serve_crate_is_scanned_and_waiver_free() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let files = workspace_files(&root);
    let serve_files: Vec<String> = files
        .iter()
        .filter_map(|f| f.strip_prefix(&root).ok())
        .map(|f| f.to_string_lossy().replace('\\', "/"))
        .filter(|f| f.starts_with("crates/serve/"))
        .collect();
    assert!(
        serve_files.iter().any(|f| f.ends_with("src/lib.rs"))
            && serve_files.iter().any(|f| f.ends_with("src/server.rs")),
        "serve crate missing from the workspace scan: {serve_files:?}"
    );
    let report = lint_files(&root, &files);
    let serve_waivers: Vec<String> = report
        .used_pragmas
        .iter()
        .filter(|(_, path, _)| path.starts_with("crates/serve/"))
        .map(|(p, path, _)| format!("{path}:{}", p.line))
        .collect();
    assert!(
        serve_waivers.is_empty(),
        "the serve crate must stay waiver-free:\n{}",
        serve_waivers.join("\n")
    );
}

/// The parallel scan's contract is byte-stability, not just equal
/// diagnostics: CI diffs the `--threads 2` output against the serial
/// run, so every rendering (text, JSON, SARIF) must come out identical
/// regardless of worker interleaving. The indexed result slots plus the
/// final (path, line, rule) sort guarantee it; this pins the guarantee.
#[test]
fn parallel_scan_is_byte_identical_to_serial() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let files = workspace_files(&root);
    let serial = lint_files_with(&root, &files, 1);
    let parallel = lint_files_with(&root, &files, 2);
    assert_eq!(serial.render_text(), parallel.render_text());
    assert_eq!(serial.render_json(), parallel.render_json());
    assert_eq!(serial.render_sarif(), parallel.render_sarif());
}

/// The burn-down's certifications are load-bearing: each must keep
/// suppressing at least one D5 site (R6 already fails the scan when
/// one goes stale), carry a reason, and stay at or above the count the
/// burn-down landed (removing one means re-adding waivers, which the
/// ceiling above would catch — this pins the other direction).
#[test]
fn certifications_are_present_and_reasoned() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let files = workspace_files(&root);
    let report = lint_files(&root, &files);
    assert!(
        report.certifications.len() >= 17,
        "expected at least 17 certified fns, found {}",
        report.certifications.len()
    );
    for (p, path, fn_name, suppressed) in &report.certifications {
        assert!(
            !p.reason.trim().is_empty(),
            "{path}:{}: certification without a reason",
            p.line
        );
        assert!(
            *suppressed > 0,
            "{path}:{}: certification of `{fn_name}` suppresses no D5 site",
            p.line
        );
    }
}
