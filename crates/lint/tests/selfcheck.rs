//! The shipped tree must lint clean: this is the same scan the CI
//! `lint-invariants` job runs, wired into `cargo test` so a violation
//! fails locally before it fails remotely.

use std::path::Path;

use hotspots_lint::scan::{find_workspace_root, lint_files, workspace_files};

#[test]
fn workspace_lints_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let files = workspace_files(&root);
    assert!(
        files.len() >= 50,
        "workspace scan found only {} files — discovery is broken",
        files.len()
    );
    let report = lint_files(&root, &files);
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report.render_text()
    );
    // every waiver in the tree must carry a reason
    for (p, path, _) in &report.used_pragmas {
        assert!(
            !p.reason.trim().is_empty(),
            "{path}:{}: waiver without a reason",
            p.line
        );
    }
    // and none may be stale
    assert!(
        report.unused_pragmas.is_empty(),
        "stale waivers present:\n{}",
        report.render_text()
    );
}

/// Retiring a waiver is one-way. The typed-error hardening of the run
/// path removed the `RunSet` and `preset_main` panic waivers; this pin
/// keeps them — or any other retired waiver — from silently returning
/// as a new `expect` with a fresh pragma. Removing a waiver lowers the
/// count; raising it takes a deliberate edit here alongside the new
/// waiver's justification.
#[test]
fn workspace_waiver_count_is_pinned() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    let files = workspace_files(&root);
    let report = lint_files(&root, &files);
    let waivers: Vec<String> = report
        .used_pragmas
        .iter()
        .map(|(p, path, _)| format!("{path}:{}", p.line))
        .collect();
    assert_eq!(
        waivers.len(),
        61,
        "workspace waiver count changed; current waivers:\n{}",
        waivers.join("\n")
    );
}
