//! Property tests for the syntax layer above the lexer: the item
//! parser and the call-graph builder must be total. They run on every
//! workspace file on every CI scan, including sources mid-edit, so
//! arbitrary token soup — unbalanced braces, truncated signatures,
//! keyword shreds — may degrade their output but never panic them.

use proptest::prelude::*;

use hotspots_lint::graph::{call_sites, CallGraph};
use hotspots_lint::items::parse;
use hotspots_lint::lexer::lex;

/// Rust-ish shreds biased toward the constructs the item parser and
/// call-site scanner actually dispatch on.
const ATOMS: [&str; 24] = [
    "fn", "struct", "enum", "trait", "impl", "mod", "const", "static", "type", "for", "where", "{",
    "}", "(", ")", "[", "]", ";", ",", "::", "#[x]", "name", ".call", "<T>",
];

fn soup(picks: &[u8]) -> String {
    picks
        .iter()
        .map(|&i| ATOMS[i as usize % ATOMS.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

proptest! {
    #[test]
    fn item_parser_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let src = String::from_utf8_lossy(&bytes);
        let lexed = lex(&src);
        let items = parse(&lexed.tokens);
        // recovered spans must be well-formed even on garbage
        for f in &items.fns {
            prop_assert!(f.line <= f.end_line);
            if let Some((s, e)) = f.body {
                prop_assert!(s <= e && e <= lexed.tokens.len());
            }
        }
    }

    #[test]
    fn item_parser_never_panics_on_keyword_soup(
        picks in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        let src = soup(&picks);
        let lexed = lex(&src);
        let items = parse(&lexed.tokens);
        for t in &items.types {
            prop_assert!(t.line <= t.end_line);
        }
    }

    #[test]
    fn call_graph_never_panics_on_keyword_soup(
        picks in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        let src = soup(&picks);
        let lexed = lex(&src);
        let items = parse(&lexed.tokens);
        // call_sites must tolerate any body span the parser recovered
        for f in &items.fns {
            if let Some(body) = f.body {
                let _ = call_sites(&lexed.tokens, body);
            }
        }
        let g = CallGraph::build(&[(&lexed.tokens[..], &items)]);
        // reachability over the soup graph must terminate and stay in
        // bounds from any seed
        let seeds: Vec<usize> = (0..g.nodes.len()).collect();
        for n in g.reachable(&seeds, |_| true) {
            prop_assert!(n < g.nodes.len());
        }
    }
}
