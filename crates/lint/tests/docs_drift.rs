//! DESIGN.md §6 and the rule engine share one source of truth: the
//! `RULE_DOCS` table. `--explain` prints it, the SARIF export ships it
//! as rule metadata, and the §6 table quotes every guarantee sentence
//! verbatim — this test is what makes "verbatim" enforceable, so prose
//! and tool can never describe different contracts.

use std::fs;
use std::path::Path;

use hotspots_lint::rules::{RuleId, RULE_DOCS};
use hotspots_lint::scan::find_workspace_root;

fn design_md() -> String {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace");
    fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md exists at the workspace root")
}

#[test]
fn every_rule_guarantee_appears_verbatim_in_design_md() {
    let design = design_md();
    for doc in &RULE_DOCS {
        assert!(
            design.contains(doc.guarantee),
            "DESIGN.md drifted from RULE_DOCS: guarantee for {} not found verbatim:\n  {}",
            doc.rule,
            doc.guarantee
        );
    }
}

#[test]
fn every_rule_id_and_name_appear_in_design_md() {
    let design = design_md();
    for rule in RuleId::ALL {
        assert!(
            design.contains(rule.id()),
            "DESIGN.md is missing rule id {}",
            rule.id()
        );
        assert!(
            design.contains(&format!("`{}`", rule.name())),
            "DESIGN.md is missing rule name `{}`",
            rule.name()
        );
    }
}

#[test]
fn rule_docs_cover_every_rule_exactly_once_in_order() {
    assert_eq!(RULE_DOCS.len(), RuleId::ALL.len());
    for (doc, rule) in RULE_DOCS.iter().zip(RuleId::ALL) {
        assert_eq!(doc.rule, rule, "RULE_DOCS order drifted from RuleId::ALL");
        assert!(!doc.guarantee.is_empty());
        assert!(!doc.example.is_empty());
        assert!(!doc.waiver.is_empty());
    }
}
