//! Protocol-session contracts for the scenario server: golden
//! transcripts, concurrent-submission dedupe, backpressure, LRU
//! eviction, and cross-instance persistence (ISSUE 10 satellite).

use std::fs;
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;

use hotspots_serve::{ServeConfig, Server};

/// A tiny engine-path spec (64 hosts, 5 simulated seconds) that runs
/// in milliseconds; `n` differentiates specs when a test needs
/// distinct cache entries.
fn tiny_spec(n: u64) -> String {
    format!(
        "[meta]\nname = \"serve-test-{n}\"\n\n[worm]\nkind = \"uniform\"\n\n\
         [population]\nkind = \"range\"\nbase = \"10.0.0.0\"\ncount = 64\nstride = 1\n\n\
         [sim]\nscan_rate = 10.0\nseeds = 2\ndt = 1.0\nmax_time = 5.0\nrng_seed = 7\nthreads = 1\n"
    )
}

/// Renders a submit request line for `spec` (escaped via the same JSON
/// writer the server parses with).
fn submit_line(spec: &str) -> String {
    let mut line = String::from("{\"op\":\"submit\",\"spec\":");
    hotspots_telemetry::json::write_str(&mut line, spec);
    line.push('}');
    line
}

fn temp_config(label: &str) -> ServeConfig {
    let dir = std::env::temp_dir().join(format!("hotspots-serve-{label}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    ServeConfig {
        cache_dir: dir,
        ..ServeConfig::default()
    }
}

fn cleanup(config: &ServeConfig) {
    fs::remove_dir_all(&config.cache_dir).ok();
}

/// Drives one stdio session and returns the response lines.
fn session(server: &Server, requests: &[String]) -> Vec<String> {
    let input = requests.join("\n");
    let mut output = Vec::new();
    server
        .serve(Cursor::new(input), &mut output)
        .expect("session");
    String::from_utf8(output)
        .expect("utf-8 responses")
        .lines()
        .map(str::to_owned)
        .collect()
}

#[test]
fn golden_session_transcript() {
    let config = temp_config("transcript");
    let server = Server::open(&config).expect("open");
    let responses = session(
        &server,
        &[
            submit_line(&tiny_spec(0)),           // miss: runs
            submit_line(&tiny_spec(0)),           // hit: memoized
            submit_line("[meta]\nname = \"\"\n"), // invalid spec
            "{\"op\":\"dance\"}".to_owned(),      // protocol error
            "{\"op\":\"stats\"}".to_owned(),
        ],
    );
    assert_eq!(responses.len(), 5, "{responses:?}");

    // cache miss and cache hit must be byte-identical: the response
    // depends only on the canonical spec
    assert_eq!(responses[0], responses[1]);
    assert!(
        responses[0].starts_with("{\"ok\":true,\"hash\":\""),
        "{}",
        responses[0]
    );
    assert!(
        responses[0].contains("\"report\":{\"kind\":\"run_report\""),
        "{}",
        responses[0]
    );
    // the canonical report never carries host timings
    assert!(
        responses[0].contains("\"wall_seconds\":0,") && responses[0].ends_with("\"phases\":{}}}"),
        "volatile fields must be zeroed: {}",
        responses[0]
    );

    // exact error shapes (golden): typed kind + escaped message
    assert!(
        responses[2].starts_with("{\"ok\":false,\"kind\":\"spec\",\"error\":\"meta.name"),
        "{}",
        responses[2]
    );
    assert_eq!(
        responses[3],
        "{\"ok\":false,\"kind\":\"protocol\",\"error\":\"unknown op \\\"dance\\\"\"}"
    );
    assert_eq!(
        responses[4],
        "{\"ok\":true,\"entries\":1,\"hits\":1,\"misses\":1,\"runs\":1,\"rejected\":0,\"evictions\":0}"
    );
    cleanup(&config);
}

#[test]
fn identical_json_and_toml_submissions_share_one_entry() {
    let config = temp_config("format-blind");
    let server = Server::open(&config).expect("open");
    let spec = hotspots_scenario::ScenarioSpec::from_toml(&tiny_spec(9)).expect("spec");
    let mut json_submit = String::from("{\"op\":\"submit\",\"format\":\"json\",\"spec\":");
    hotspots_telemetry::json::write_str(&mut json_submit, &spec.to_json());
    json_submit.push('}');

    let responses = session(
        &server,
        &[
            submit_line(&tiny_spec(9)),
            json_submit,
            "{\"op\":\"stats\"}".to_owned(),
        ],
    );
    // same canonical spec whatever the wire format: one entry, one run,
    // byte-identical responses
    assert_eq!(responses[0], responses[1]);
    assert_eq!(
        responses[2],
        "{\"ok\":true,\"entries\":1,\"hits\":1,\"misses\":1,\"runs\":1,\"rejected\":0,\"evictions\":0}"
    );
    cleanup(&config);
}

#[test]
fn concurrent_identical_submissions_run_once() {
    let config = temp_config("dedupe");
    let server = Arc::new(Server::open(&config).expect("open"));
    let request = submit_line(&tiny_spec(1));

    let clients: Vec<_> = (0..2)
        .map(|_| {
            let server = Arc::clone(&server);
            let request = request.clone();
            thread::spawn(move || server.handle_line(&request))
        })
        .collect();
    let responses: Vec<String> = clients
        .into_iter()
        .map(|c| c.join().expect("client join"))
        .collect();

    assert_eq!(
        responses[0], responses[1],
        "identical submissions must yield identical responses"
    );
    assert!(
        responses[0].starts_with("{\"ok\":true,"),
        "{}",
        responses[0]
    );
    // exactly one dispatched run, however the two clients interleaved
    let stats = server.handle_line("{\"op\":\"stats\"}");
    assert!(
        stats.contains("\"runs\":1,"),
        "two identical submissions must cost one run: {stats}"
    );
    cleanup(&config);
}

#[test]
fn zero_worker_server_reports_backpressure() {
    let mut config = temp_config("backpressure");
    config.workers = 0;
    config.queue_depth = 0;
    let server = Server::open(&config).expect("open");
    let responses = session(
        &server,
        &[submit_line(&tiny_spec(2)), "{\"op\":\"stats\"}".to_owned()],
    );
    assert_eq!(
        responses[0],
        "{\"ok\":false,\"kind\":\"queue-full\",\"error\":\"worker queue is full; resubmit later\"}"
    );
    assert_eq!(
        responses[1],
        "{\"ok\":true,\"entries\":0,\"hits\":0,\"misses\":1,\"runs\":0,\"rejected\":1,\"evictions\":0}"
    );
    cleanup(&config);
}

#[test]
fn lru_eviction_drops_the_coldest_entry() {
    let mut config = temp_config("eviction");
    config.max_entries = 2;
    let server = Server::open(&config).expect("open");
    let responses = session(
        &server,
        &[
            submit_line(&tiny_spec(3)), // run; cache [3]
            submit_line(&tiny_spec(4)), // run; cache [3,4]
            submit_line(&tiny_spec(3)), // hit; 3 warmed, 4 now coldest
            submit_line(&tiny_spec(5)), // run; evicts 4 → cache [3,5]
            submit_line(&tiny_spec(3)), // hit (survived)
            submit_line(&tiny_spec(4)), // miss again: evicted, re-runs
            "{\"op\":\"stats\"}".to_owned(),
        ],
    );
    assert_eq!(responses[0], responses[2], "entry 3 served from cache");
    assert_eq!(responses[2], responses[4], "entry 3 survived eviction");
    assert_eq!(
        responses[1], responses[5],
        "re-run after eviction is byte-identical"
    );
    assert_eq!(
        responses[6],
        "{\"ok\":true,\"entries\":2,\"hits\":2,\"misses\":4,\"runs\":4,\"rejected\":0,\"evictions\":2}"
    );
    cleanup(&config);
}

#[test]
fn cache_persists_across_server_instances() {
    let config = temp_config("persist");
    let first = {
        let server = Server::open(&config).expect("open");
        session(&server, &[submit_line(&tiny_spec(6))]).remove(0)
    };
    // a fresh server over the same cache dir serves the stored bytes
    // without dispatching a run
    let server = Server::open(&config).expect("reopen");
    let responses = session(
        &server,
        &[submit_line(&tiny_spec(6)), "{\"op\":\"stats\"}".to_owned()],
    );
    assert_eq!(
        responses[0], first,
        "cached response is byte-identical across processes"
    );
    assert_eq!(
        responses[1],
        "{\"ok\":true,\"entries\":1,\"hits\":1,\"misses\":0,\"runs\":0,\"rejected\":0,\"evictions\":0}"
    );
    cleanup(&config);
}

#[test]
fn check_verifies_and_detects_tampering() {
    let config = temp_config("check");
    let server = Server::open(&config).expect("open");
    let responses = session(&server, &[submit_line(&tiny_spec(7))]);
    assert!(
        responses[0].starts_with("{\"ok\":true,"),
        "{}",
        responses[0]
    );
    drop(server);

    let outcomes = hotspots_serve::check(&config).expect("check");
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].failure, None, "clean cache verifies");

    // corrupt the stored report: check must catch the byte difference
    let entry: PathBuf = config
        .cache_dir
        .join(&outcomes[0].hash)
        .join("report.jsonl");
    let stored = fs::read_to_string(&entry).expect("read report");
    fs::write(
        &entry,
        stored.replace("\"infections\":", "\"infections\":9"),
    )
    .expect("tamper");
    let outcomes = hotspots_serve::check(&config).expect("check");
    let failure = outcomes[0].failure.as_deref().expect("tampering detected");
    assert!(failure.contains("diverges"), "{failure}");
    cleanup(&config);
}
