//! Optional TCP transport (`net` feature; `std::net` only).
//!
//! The protocol is byte-identical to the stdio session: one JSONL
//! request per line in, one response line out. Each accepted client
//! gets its own thread driving [`Server::serve`] over the stream; the
//! memoization, dedupe, and backpressure semantics are the server's
//! own and do not change with the transport.

use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

use crate::server::Server;

/// Serves clients on `addr` (e.g. `127.0.0.1:7077`) until the process
/// exits. Each connection is handled on its own thread; a client whose
/// stream fails mid-session is dropped without affecting the others.
///
/// # Errors
///
/// Binding the listener, or a failed `accept`.
pub fn serve_tcp(server: &Arc<Server>, addr: &str) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    loop {
        let (stream, peer) = listener.accept()?;
        let server = Arc::clone(server);
        let spawned = thread::Builder::new()
            .name(format!("serve-client-{peer}"))
            .spawn(move || drop(handle_client(&server, stream)));
        // a spawn failure drops this client; the listener keeps going
        drop(spawned);
    }
}

fn handle_client(server: &Server, stream: TcpStream) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    server.serve(reader, stream)
}
