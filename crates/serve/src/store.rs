//! The content-addressed result store.
//!
//! One directory per spec hash under the cache root:
//!
//! ```text
//! <cache-dir>/
//!   manifest.jsonl              version line + one line per entry
//!   <16-hex-hash>/
//!     spec.toml                 the canonical spec
//!     report.jsonl              the canonicalized run report
//! ```
//!
//! Snapshot discipline throughout: every file is written to a `.tmp`
//! sibling and atomically renamed into place, so a crash mid-write
//! leaves either the old bytes or the new bytes, never a torn file.
//! The manifest leads with a version line
//! (`{"kind":"serve_manifest","version":1}`) and is rewritten — also
//! atomically — on every mutation; entry count is bounded, so the
//! rewrite is cheap.
//!
//! Eviction is least-recently-used over *logical* sequence numbers: the
//! store stamps each touch with a monotonic counter persisted in the
//! manifest, never a wall clock (the workspace no-clock rule applies —
//! and logical time makes eviction order reproducible in tests).

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use hotspots_scenario::HotspotsError;
use hotspots_telemetry::hash::{format_hash, parse_hash};
use hotspots_telemetry::json::{self, Json};

/// The manifest schema version this build reads and writes.
pub const MANIFEST_VERSION: u64 = 1;

/// One cached entry: the spec's `meta.name` and its LRU stamp.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    name: String,
    last_used: u64,
}

/// The content-addressed, LRU-bounded result store.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    max_entries: usize,
    /// Next logical timestamp; strictly greater than any `last_used`.
    seq: u64,
    entries: BTreeMap<u64, Entry>,
    evictions: u64,
}

fn io_err(context: impl Into<String>, source: io::Error) -> HotspotsError {
    HotspotsError::Io {
        context: context.into(),
        source,
    }
}

fn data_err(context: impl Into<String>, message: impl Into<String>) -> HotspotsError {
    HotspotsError::Io {
        context: context.into(),
        source: io::Error::new(io::ErrorKind::InvalidData, message.into()),
    }
}

/// Writes `bytes` to `path` via a `.tmp` sibling and atomic rename.
fn atomic_write(path: &Path, bytes: &str) -> Result<(), HotspotsError> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes).map_err(|e| io_err(format!("writing {}", tmp.display()), e))?;
    fs::rename(&tmp, path).map_err(|e| io_err(format!("renaming {} into place", tmp.display()), e))
}

impl ResultStore {
    /// Opens (or initializes) the store rooted at `dir`, replaying the
    /// manifest if one exists. Manifest entries whose directories have
    /// vanished are dropped silently; `max_entries` is enforced on the
    /// next insert, not retroactively at open.
    ///
    /// # Errors
    ///
    /// I/O failure creating the root or reading the manifest, or a
    /// manifest whose version line this build does not understand.
    pub fn open(dir: &Path, max_entries: usize) -> Result<ResultStore, HotspotsError> {
        fs::create_dir_all(dir).map_err(|e| io_err(format!("creating {}", dir.display()), e))?;
        let mut store = ResultStore {
            dir: dir.to_path_buf(),
            max_entries: max_entries.max(1),
            seq: 1,
            entries: BTreeMap::new(),
            evictions: 0,
        };
        let manifest = store.manifest_path();
        let text = match fs::read_to_string(&manifest) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(store),
            Err(e) => return Err(io_err(format!("reading {}", manifest.display()), e)),
        };
        let context = || format!("parsing {}", manifest.display());
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| data_err(context(), "empty manifest"))?;
        let doc = json::parse(header).map_err(|e| data_err(context(), e))?;
        if doc.get("kind").and_then(Json::as_str) != Some("serve_manifest") {
            return Err(data_err(
                context(),
                "first line is not a serve_manifest header",
            ));
        }
        match doc.get("version").and_then(Json::as_u64) {
            Some(MANIFEST_VERSION) => {}
            Some(v) => {
                return Err(data_err(
                    context(),
                    format!("manifest version {v} (this build reads {MANIFEST_VERSION})"),
                ))
            }
            None => return Err(data_err(context(), "header has no version field")),
        }
        for line in lines {
            let doc = json::parse(line).map_err(|e| data_err(context(), e))?;
            let hash = doc
                .get("hash")
                .and_then(Json::as_str)
                .and_then(parse_hash)
                .ok_or_else(|| data_err(context(), format!("bad entry hash in {line:?}")))?;
            let name = doc
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| data_err(context(), format!("entry without a name in {line:?}")))?
                .to_owned();
            let last_used = doc
                .get("seq")
                .and_then(Json::as_u64)
                .ok_or_else(|| data_err(context(), format!("entry without a seq in {line:?}")))?;
            if store.entry_dir(hash).is_dir() {
                store.seq = store.seq.max(last_used + 1);
                store.entries.insert(hash, Entry { name, last_used });
            }
        }
        Ok(store)
    }

    /// The cache root this store writes under.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted by the LRU policy over this store's lifetime.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// True when `hash` is cached.
    #[must_use]
    pub fn contains(&self, hash: u64) -> bool {
        self.entries.contains_key(&hash)
    }

    /// The cached hashes with their spec names, in hash order.
    #[must_use]
    pub fn hashes(&self) -> Vec<(u64, String)> {
        self.entries
            .iter()
            .map(|(h, e)| (*h, e.name.clone()))
            .collect()
    }

    /// Reads the cached report for `hash`, stamping it most recently
    /// used. Returns `Ok(None)` on a miss.
    ///
    /// # Errors
    ///
    /// I/O failure reading the entry or rewriting the manifest.
    pub fn get(&mut self, hash: u64) -> Result<Option<String>, HotspotsError> {
        if !self.entries.contains_key(&hash) {
            return Ok(None);
        }
        let report = self.read_report(hash)?;
        let stamp = self.seq;
        self.seq += 1;
        if let Some(entry) = self.entries.get_mut(&hash) {
            entry.last_used = stamp;
        }
        self.write_manifest()?;
        Ok(Some(report))
    }

    /// Reads the cached report bytes without touching LRU state (used
    /// by `serve --check`, which must not reorder eviction history).
    ///
    /// # Errors
    ///
    /// I/O failure, including `hash` not being cached.
    pub fn read_report(&self, hash: u64) -> Result<String, HotspotsError> {
        let path = self.entry_dir(hash).join("report.jsonl");
        fs::read_to_string(&path).map_err(|e| io_err(format!("reading {}", path.display()), e))
    }

    /// Reads the canonical spec for `hash` without touching LRU state.
    ///
    /// # Errors
    ///
    /// I/O failure, including `hash` not being cached.
    pub fn read_spec(&self, hash: u64) -> Result<String, HotspotsError> {
        let path = self.entry_dir(hash).join("spec.toml");
        fs::read_to_string(&path).map_err(|e| io_err(format!("reading {}", path.display()), e))
    }

    /// Inserts an entry: writes `spec.toml` and `report.jsonl` under
    /// the hash directory (temp file + atomic rename each), stamps it
    /// most recently used, evicts least-recently-used entries past
    /// `max_entries`, and rewrites the manifest. Reinserting an
    /// existing hash refreshes its bytes and stamp.
    ///
    /// # Errors
    ///
    /// I/O failure writing the entry, evicting, or rewriting the
    /// manifest.
    pub fn insert(
        &mut self,
        hash: u64,
        name: &str,
        spec_toml: &str,
        report_jsonl: &str,
    ) -> Result<(), HotspotsError> {
        let dir = self.entry_dir(hash);
        fs::create_dir_all(&dir).map_err(|e| io_err(format!("creating {}", dir.display()), e))?;
        atomic_write(&dir.join("spec.toml"), spec_toml)?;
        atomic_write(&dir.join("report.jsonl"), report_jsonl)?;
        let stamp = self.seq;
        self.seq += 1;
        self.entries.insert(
            hash,
            Entry {
                name: name.to_owned(),
                last_used: stamp,
            },
        );
        while self.entries.len() > self.max_entries {
            self.evict_lru()?;
        }
        self.write_manifest()
    }

    /// Removes the least-recently-used entry (smallest logical stamp).
    fn evict_lru(&mut self) -> Result<(), HotspotsError> {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(h, _)| *h);
        let Some(hash) = victim else { return Ok(()) };
        let dir = self.entry_dir(hash);
        fs::remove_dir_all(&dir).map_err(|e| io_err(format!("evicting {}", dir.display()), e))?;
        self.entries.remove(&hash);
        self.evictions += 1;
        Ok(())
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.jsonl")
    }

    fn entry_dir(&self, hash: u64) -> PathBuf {
        self.dir.join(format_hash(hash))
    }

    /// Rewrites the manifest atomically: header line, then entries in
    /// hash order (deterministic bytes for a given store state).
    fn write_manifest(&self) -> Result<(), HotspotsError> {
        let mut out = format!("{{\"kind\":\"serve_manifest\",\"version\":{MANIFEST_VERSION}}}\n");
        for (hash, entry) in &self.entries {
            out.push_str("{\"hash\":\"");
            out.push_str(&format_hash(*hash));
            out.push_str("\",\"name\":");
            json::write_str(&mut out, &entry.name);
            out.push_str(",\"seq\":");
            out.push_str(&entry.last_used.to_string());
            out.push_str("}\n");
        }
        atomic_write(&self.manifest_path(), &out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(label: &str, max_entries: usize) -> (PathBuf, ResultStore) {
        let dir =
            std::env::temp_dir().join(format!("hotspots-store-{label}-{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        let store = ResultStore::open(&dir, max_entries).expect("open");
        (dir, store)
    }

    #[test]
    fn insert_get_round_trips_and_persists() {
        let (dir, mut store) = temp_store("roundtrip", 8);
        store
            .insert(7, "fig2", "[meta]\n", "{\"kind\":\"run_report\"}")
            .expect("insert");
        assert_eq!(
            store.get(7).expect("get"),
            Some("{\"kind\":\"run_report\"}".to_owned())
        );
        assert_eq!(store.get(8).expect("get"), None);

        // a fresh open replays the manifest
        let mut reopened = ResultStore::open(&dir, 8).expect("reopen");
        assert_eq!(reopened.len(), 1);
        assert!(reopened.contains(7));
        assert_eq!(
            reopened.get(7).expect("get"),
            Some("{\"kind\":\"run_report\"}".to_owned())
        );
        assert_eq!(reopened.read_spec(7).expect("spec"), "[meta]\n");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let (dir, mut store) = temp_store("lru", 2);
        store.insert(1, "a", "a", "ra").expect("insert");
        store.insert(2, "b", "b", "rb").expect("insert");
        // touch 1 so 2 becomes the LRU victim
        store.get(1).expect("get");
        store.insert(3, "c", "c", "rc").expect("insert");
        assert_eq!(store.len(), 2);
        assert!(store.contains(1), "recently-used entry survived");
        assert!(!store.contains(2), "LRU entry evicted");
        assert!(store.contains(3));
        assert_eq!(store.evictions(), 1);
        assert!(!dir.join(format_hash(2)).exists(), "evicted dir removed");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_order_survives_reopen() {
        let (dir, mut store) = temp_store("lru-reopen", 2);
        store.insert(1, "a", "a", "ra").expect("insert");
        store.insert(2, "b", "b", "rb").expect("insert");
        store.get(1).expect("get");
        drop(store);
        // logical stamps persisted: 2 is still the victim after reopen
        let mut store = ResultStore::open(&dir, 2).expect("reopen");
        store.insert(3, "c", "c", "rc").expect("insert");
        assert!(store.contains(1) && store.contains(3) && !store.contains(2));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn future_manifest_versions_are_rejected() {
        let (dir, store) = temp_store("version", 2);
        drop(store);
        fs::write(
            dir.join("manifest.jsonl"),
            "{\"kind\":\"serve_manifest\",\"version\":999}\n",
        )
        .expect("write");
        let err = ResultStore::open(&dir, 2).expect_err("version 999 must not open");
        assert!(err.to_string().contains("999"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_entries_with_missing_dirs_are_dropped() {
        let (dir, mut store) = temp_store("missing", 4);
        store.insert(1, "a", "a", "ra").expect("insert");
        store.insert(2, "b", "b", "rb").expect("insert");
        drop(store);
        fs::remove_dir_all(dir.join(format_hash(1))).expect("remove entry dir");
        let store = ResultStore::open(&dir, 4).expect("reopen");
        assert!(!store.contains(1));
        assert!(store.contains(2));
        fs::remove_dir_all(&dir).ok();
    }
}
