//! The bounded run pool.
//!
//! The executor discipline from the sharded engine (DESIGN.md §5f),
//! applied to whole scenario runs: named worker threads parked on a
//! bounded channel, jobs transferred by ownership, worker panics
//! captured and shipped back as typed failures rather than poisoning
//! the server, and `Drop` closing the channel then joining every
//! worker. The channel bound *is* the backpressure policy: when the
//! queue is full, submission fails immediately with a queue-full
//! signal the protocol layer reports to the client, instead of
//! accepting unbounded work.
//!
//! A pool with zero workers is legal and never drains its queue —
//! every uncached submission is rejected. Tests use it to pin the
//! backpressure path deterministically.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;

use hotspots_scenario::{run_spec, RunContext, ScenarioSpec};

/// Locks a mutex, shrugging off poisoning: a worker that panicked has
/// already had its panic captured and converted to a failure result,
/// so the data under the lock is still consistent.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Where one run's result lands. Submitters park on [`RunSlot::wait`];
/// every submitter of an identical in-flight spec shares one slot, so
/// concurrent duplicate submissions cost one run.
#[derive(Debug)]
pub struct RunSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

#[derive(Debug)]
enum SlotState {
    Pending,
    Done(Result<String, String>),
}

impl RunSlot {
    /// A slot awaiting its result.
    #[must_use]
    pub fn new() -> RunSlot {
        RunSlot {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        }
    }

    /// Blocks until the run completes; returns the canonicalized
    /// report line, or the failure message.
    ///
    /// # Errors
    ///
    /// The run's own failure (spec build, worker loss, captured
    /// panic), as reported by the worker.
    pub fn wait(&self) -> Result<String, String> {
        let mut state = lock(&self.state);
        loop {
            match &*state {
                SlotState::Done(result) => return result.clone(),
                SlotState::Pending => {
                    state = self
                        .ready
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Publishes the result and wakes every waiter.
    fn complete(&self, result: Result<String, String>) {
        *lock(&self.state) = SlotState::Done(result);
        self.ready.notify_all();
    }
}

impl Default for RunSlot {
    fn default() -> RunSlot {
        RunSlot::new()
    }
}

/// One queued run: the spec to execute and the slot its result lands
/// in. The hash rides along for worker-side labeling.
#[derive(Debug)]
pub struct RunJob {
    /// The spec's content hash (diagnostics only; the server owns the
    /// cache keyed on it).
    pub hash: u64,
    /// The validated spec to run.
    pub spec: ScenarioSpec,
    /// Where the result lands.
    pub slot: Arc<RunSlot>,
}

/// Submission failed because the queue is at capacity (or the pool has
/// no workers to ever drain it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

/// The bounded worker pool.
#[derive(Debug)]
pub struct RunPool {
    jobs: Option<SyncSender<RunJob>>,
    /// Keeps the channel alive in the zero-worker configuration so
    /// submission reports Full (queue exists, nothing drains it)
    /// rather than Disconnected.
    _parked_queue: Option<Mutex<Receiver<RunJob>>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl RunPool {
    /// Spawns `workers` named run workers sharing a queue bounded at
    /// `queue_depth` pending jobs; each run executes with `threads`
    /// engine threads (0 = auto).
    #[must_use]
    pub fn new(workers: usize, queue_depth: usize, threads: usize) -> RunPool {
        let (tx, rx) = sync_channel::<RunJob>(queue_depth);
        if workers == 0 {
            return RunPool {
                jobs: Some(tx),
                _parked_queue: Some(Mutex::new(rx)),
                workers: Vec::new(),
            };
        }
        let shared = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let queue = Arc::clone(&shared);
                let ctx = RunContext::new("hotspots-serve").with_threads(threads);
                thread::Builder::new()
                    .name(format!("serve-run-{i}"))
                    .spawn(move || worker_loop(&queue, &ctx))
            })
            .collect::<Result<Vec<_>, _>>()
            .unwrap_or_default();
        RunPool {
            jobs: Some(tx),
            _parked_queue: None,
            workers: handles,
        }
    }

    /// Queues a run without blocking.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the queue is at capacity — the caller turns
    /// this into the protocol's backpressure response.
    pub fn try_submit(&self, job: RunJob) -> Result<(), QueueFull> {
        let Some(jobs) = &self.jobs else {
            return Err(QueueFull);
        };
        match jobs.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => Err(QueueFull),
        }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for RunPool {
    fn drop(&mut self) {
        // closing the channel ends every worker's recv loop; then join
        // so no worker outlives the pool
        drop(self.jobs.take());
        for handle in self.workers.drain(..) {
            drop(handle.join());
        }
    }
}

/// Pulls jobs off the shared queue until the channel closes. Panics
/// inside a run are captured and published as failures, keeping the
/// worker (and the server above it) alive.
fn worker_loop(queue: &Mutex<Receiver<RunJob>>, ctx: &RunContext) {
    loop {
        let received = lock(queue).recv();
        let Ok(job) = received else { return };
        let result = catch_unwind(AssertUnwindSafe(|| execute(&job.spec, ctx)))
            .unwrap_or_else(|payload| Err(format!("run panicked: {}", panic_text(&payload))));
        job.slot.complete(result);
    }
}

/// Runs the spec and returns the canonicalized report line — the
/// byte-stable form the store and the protocol both use.
fn execute(spec: &ScenarioSpec, ctx: &RunContext) -> Result<String, String> {
    let run = run_spec(spec, ctx).map_err(|e| e.to_string())?;
    Ok(run.report.build().canonicalized().to_jsonl())
}

/// Renders a captured panic payload (the same downcast ladder as the
/// shard executor).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_owned()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_worker_pools_reject_everything() {
        let pool = RunPool::new(0, 0, 1);
        let job = RunJob {
            hash: 1,
            spec: hotspots_scenario::presets()[0].spec(hotspots_scenario::Scale::Quick),
            slot: Arc::new(RunSlot::new()),
        };
        assert_eq!(pool.try_submit(job), Err(QueueFull));
    }

    #[test]
    fn slots_deliver_to_every_waiter() {
        let slot = Arc::new(RunSlot::new());
        let waiters: Vec<_> = (0..3)
            .map(|_| {
                let slot = Arc::clone(&slot);
                thread::spawn(move || slot.wait())
            })
            .collect();
        slot.complete(Ok("report".to_owned()));
        for waiter in waiters {
            assert_eq!(waiter.join().expect("join"), Ok("report".to_owned()));
        }
    }
}
