//! Scenario server: memoized runs behind a line-delimited protocol.
//!
//! The scenario layer makes every run a pure function of its canonical
//! spec — same spec + seed, same report bytes at any thread count — so
//! results are cacheable *and the cache is verifiable*: any entry can
//! be re-derived and compared byte-for-byte. This crate turns that
//! contract into a long-running service (DESIGN.md §5i):
//!
//! 1. **Canonicalize.** A submitted spec (TOML or JSON text) round-trips
//!    through [`hotspots_scenario::ScenarioSpec`] to its normalized
//!    TOML, erasing formatting, key order, and explicit defaults.
//! 2. **Hash.** The canonical bytes are keyed with 64-bit FNV-1a
//!    ([`hotspots_telemetry::hash`]); the key is stable across
//!    processes and platforms.
//! 3. **Memoize.** A content-addressed [`store::ResultStore`] keeps one
//!    directory per spec hash (`spec.toml` + `report.jsonl`), written
//!    via temp-file + atomic rename, indexed by a versioned
//!    `manifest.jsonl`, and bounded by an LRU policy over logical
//!    sequence numbers (no wall clocks — the determinism lint's no-clock
//!    rule holds here too).
//! 4. **Run.** Cache misses queue onto a bounded [`pool::RunPool`]
//!    (the PR 8 executor discipline: named workers, ownership transfer
//!    over channels, panics captured and shipped back); identical
//!    in-flight submissions share one run.
//! 5. **Verify.** [`server::check`] re-runs every cached entry and
//!    diffs the stored report byte-for-byte — the determinism audit as
//!    a first-class operation (`hotspots serve --check`).
//!
//! The wire protocol is JSONL over stdio (see [`protocol`]); an
//! optional TCP listener lives behind the `net` feature and uses only
//! `std::net`.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod pool;
pub mod protocol;
pub mod server;
pub mod store;

#[cfg(feature = "net")]
pub mod net;

pub use pool::{RunPool, RunSlot};
pub use protocol::{ErrorKind, Request, SpecFormat};
pub use server::{check, CheckOutcome, ServeConfig, Server};
pub use store::ResultStore;
