//! The server: protocol dispatch, memoization, and cache verification.

use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use hotspots_scenario::{run_spec, HotspotsError, RunContext, ScenarioSpec};
use hotspots_telemetry::hash::format_hash;

use crate::pool::{RunJob, RunPool, RunSlot};
use crate::protocol::{self, ErrorKind, Request, SpecFormat};
use crate::store::ResultStore;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Root of the content-addressed result store.
    pub cache_dir: PathBuf,
    /// LRU bound on cached entries (minimum 1).
    pub max_entries: usize,
    /// Worker threads draining the run queue. Zero is legal: nothing
    /// drains, every uncached submission reports queue-full.
    pub workers: usize,
    /// Bound on queued (not yet running) jobs.
    pub queue_depth: usize,
    /// Engine threads per run (0 = auto).
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            cache_dir: PathBuf::from(".hotspots-cache"),
            max_entries: 64,
            workers: 1,
            queue_depth: 16,
            threads: 1,
        }
    }
}

/// Session counters, exposed over the `stats` op.
#[derive(Debug, Default)]
struct ServeStats {
    /// Submissions answered from the persistent store.
    hits: AtomicU64,
    /// Submissions not in the store at arrival.
    misses: AtomicU64,
    /// Jobs actually dispatched to the pool (deduplicated).
    runs: AtomicU64,
    /// Submissions rejected with queue-full backpressure.
    rejected: AtomicU64,
}

/// The scenario server. Shareable across client threads (`&self`
/// methods throughout): the store sits behind a mutex, in-flight
/// dedupe behind another, and the pool hands results back through
/// per-run slots.
#[derive(Debug)]
pub struct Server {
    store: Mutex<ResultStore>,
    inflight: Mutex<BTreeMap<u64, Arc<RunSlot>>>,
    pool: RunPool,
    stats: ServeStats,
}

impl Server {
    /// Opens the result store and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Store open failure (unwritable cache dir, corrupt or
    /// future-versioned manifest).
    pub fn open(config: &ServeConfig) -> Result<Server, HotspotsError> {
        let store = ResultStore::open(&config.cache_dir, config.max_entries)?;
        Ok(Server {
            store: Mutex::new(store),
            inflight: Mutex::new(BTreeMap::new()),
            pool: RunPool::new(config.workers, config.queue_depth, config.threads),
            stats: ServeStats::default(),
        })
    }

    /// Handles one request line, returning the one response line
    /// (without trailing newline). Never panics and never kills the
    /// session: every failure becomes an error response.
    pub fn handle_line(&self, line: &str) -> String {
        match protocol::parse_request(line) {
            Ok(Request::Submit { format, spec }) => self.handle_submit(format, &spec),
            Ok(Request::Stats) => {
                let store = lock(&self.store);
                protocol::ok_stats(
                    store.len(),
                    self.stats.hits.load(Ordering::Relaxed),
                    self.stats.misses.load(Ordering::Relaxed),
                    self.stats.runs.load(Ordering::Relaxed),
                    self.stats.rejected.load(Ordering::Relaxed),
                    store.evictions(),
                )
            }
            Err(message) => protocol::error(ErrorKind::Protocol, &message),
        }
    }

    fn handle_submit(&self, format: SpecFormat, spec_text: &str) -> String {
        let parsed = match format {
            SpecFormat::Toml => ScenarioSpec::from_toml(spec_text),
            SpecFormat::Json => ScenarioSpec::from_json(spec_text),
        };
        let spec = match parsed {
            Ok(spec) => spec,
            Err(e) => return protocol::error(ErrorKind::Spec, &e.to_string()),
        };
        let canonical = spec.canonical_toml();
        let hash = spec.content_hash();
        let hash_text = format_hash(hash);
        let name = spec.meta.name.clone();

        // memoized?
        match lock(&self.store).get(hash) {
            Ok(Some(report)) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return protocol::ok_submit(&hash_text, report.trim_end());
            }
            Ok(None) => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => return protocol::error(ErrorKind::Runtime, &e.to_string()),
        }

        // join an identical in-flight run, or dispatch one
        let slot = {
            let mut inflight = lock(&self.inflight);
            if let Some(slot) = inflight.get(&hash) {
                Arc::clone(slot)
            } else {
                let slot = Arc::new(RunSlot::new());
                let job = RunJob {
                    hash,
                    spec,
                    slot: Arc::clone(&slot),
                };
                if self.pool.try_submit(job).is_err() {
                    self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    return protocol::error(
                        ErrorKind::QueueFull,
                        "worker queue is full; resubmit later",
                    );
                }
                self.stats.runs.fetch_add(1, Ordering::Relaxed);
                inflight.insert(hash, Arc::clone(&slot));
                slot
            }
        };

        let result = slot.wait();
        lock(&self.inflight).remove(&hash);
        match result {
            Ok(report) => {
                // first finisher persists; duplicates are no-ops with
                // identical bytes either way
                let mut store = lock(&self.store);
                if !store.contains(hash) {
                    if let Err(e) = store.insert(hash, &name, &canonical, &report) {
                        return protocol::error(ErrorKind::Runtime, &e.to_string());
                    }
                }
                protocol::ok_submit(&hash_text, report.trim_end())
            }
            Err(message) => protocol::error(ErrorKind::Runtime, &message),
        }
    }

    /// Drives a JSONL session: one response line per non-empty request
    /// line, flushed as it goes, until EOF.
    ///
    /// # Errors
    ///
    /// I/O failure on either side of the session.
    pub fn serve<R: BufRead, W: Write>(&self, input: R, mut output: W) -> std::io::Result<()> {
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            writeln!(output, "{}", self.handle_line(&line))?;
            output.flush()?;
        }
        Ok(())
    }
}

/// One entry's verdict from a verification pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    /// The entry's content hash, formatted.
    pub hash: String,
    /// The spec's `meta.name`.
    pub name: String,
    /// `None` when the re-run reproduced the stored bytes exactly;
    /// otherwise what went wrong.
    pub failure: Option<String>,
}

/// Re-derives every cached entry — parse its stored canonical spec,
/// re-run it, canonicalize the fresh report — and diffs against the
/// stored bytes, byte for byte. The determinism audit as a first-class
/// operation: a mismatch means either the cache was corrupted or the
/// engine broke its own reproducibility contract.
///
/// Does not touch LRU state, so auditing never reorders eviction.
///
/// # Errors
///
/// Store open/read failure. Per-entry divergence is a [`CheckOutcome`]
/// failure, not an error.
pub fn check(config: &ServeConfig) -> Result<Vec<CheckOutcome>, HotspotsError> {
    let store = ResultStore::open(&config.cache_dir, config.max_entries)?;
    let ctx = RunContext::new("hotspots-serve").with_threads(config.threads);
    let mut outcomes = Vec::new();
    for (hash, name) in store.hashes() {
        let stored = store.read_report(hash)?;
        let spec_toml = store.read_spec(hash)?;
        let failure = match ScenarioSpec::from_toml(&spec_toml) {
            Err(e) => Some(format!("stored spec no longer parses: {e}")),
            Ok(spec) if spec.content_hash() != hash => Some(format!(
                "stored spec re-hashes to {} (entry dir says {})",
                format_hash(spec.content_hash()),
                format_hash(hash),
            )),
            Ok(spec) => match run_spec(&spec, &ctx) {
                Err(e) => Some(format!("re-run failed: {e}")),
                Ok(run) => {
                    let fresh = run.report.build().canonicalized().to_jsonl();
                    if fresh.trim_end() == stored.trim_end() {
                        None
                    } else {
                        Some(format!(
                            "re-run diverges from stored bytes\n  stored: {}\n   fresh: {}",
                            stored.trim_end(),
                            fresh.trim_end(),
                        ))
                    }
                }
            },
        };
        outcomes.push(CheckOutcome {
            hash: format_hash(hash),
            name,
            failure,
        });
    }
    Ok(outcomes)
}
