//! The line-delimited request/response protocol.
//!
//! One JSON object per line in each direction. Requests:
//!
//! ```text
//! {"op":"submit","spec":"<spec text>"}            submit a TOML spec
//! {"op":"submit","format":"json","spec":"..."}    submit a JSON spec
//! {"op":"stats"}                                  session counters
//! ```
//!
//! Responses:
//!
//! ```text
//! {"ok":true,"hash":"<16 hex>","report":{...}}    submit: canonical report
//! {"ok":true,"entries":N,"hits":N,...}            stats
//! {"ok":false,"kind":"<kind>","error":"..."}      any failure
//! ```
//!
//! A submit response depends only on the canonical spec — it carries
//! no cached/fresh marker and the report is the canonicalized form
//! with host-timing fields zeroed — so resubmitting a spec yields
//! byte-identical bytes whether the result came from the store, from a
//! shared in-flight run, or from a fresh one. Cache behavior is
//! observable through `stats` instead.

use hotspots_telemetry::json::{self, Json};

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Run (or recall) the scenario serialized in `spec`.
    Submit {
        /// How `spec` is encoded.
        format: SpecFormat,
        /// The spec text itself, TOML or JSON per `format`.
        spec: String,
    },
    /// Report session counters.
    Stats,
}

/// The encoding of a submitted spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecFormat {
    /// `ScenarioSpec::from_toml` (the default).
    Toml,
    /// `ScenarioSpec::from_json`.
    Json,
}

/// The failure class of an error response, in the `kind` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line itself was malformed.
    Protocol,
    /// The spec failed to parse or validate.
    Spec,
    /// The worker queue is full; the client should back off and retry.
    QueueFull,
    /// The run itself failed (worker loss, I/O, store failure).
    Runtime,
}

impl ErrorKind {
    /// The wire name of this kind.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::Spec => "spec",
            ErrorKind::QueueFull => "queue-full",
            ErrorKind::Runtime => "runtime",
        }
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a message describing the malformation; the server reports
/// it as an [`ErrorKind::Protocol`] response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = json::parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request needs a string field \"op\"")?;
    match op {
        "submit" => {
            let spec = doc
                .get("spec")
                .and_then(Json::as_str)
                .ok_or("submit needs a string field \"spec\"")?
                .to_owned();
            let format = match doc.get("format").and_then(Json::as_str) {
                None | Some("toml") => SpecFormat::Toml,
                Some("json") => SpecFormat::Json,
                Some(other) => return Err(format!("unknown spec format {other:?}")),
            };
            Ok(Request::Submit { format, spec })
        }
        "stats" => Ok(Request::Stats),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Renders a successful submit response. `report_jsonl` must be a
/// complete JSON object (a canonicalized run-report line); it is
/// inlined verbatim so the response bytes are exactly as stored.
#[must_use]
pub fn ok_submit(hash_text: &str, report_jsonl: &str) -> String {
    format!("{{\"ok\":true,\"hash\":\"{hash_text}\",\"report\":{report_jsonl}}}")
}

/// Renders a stats response. Field order is fixed so sessions diff
/// cleanly.
#[must_use]
pub fn ok_stats(
    entries: usize,
    hits: u64,
    misses: u64,
    runs: u64,
    rejected: u64,
    evictions: u64,
) -> String {
    format!(
        "{{\"ok\":true,\"entries\":{entries},\"hits\":{hits},\"misses\":{misses},\
         \"runs\":{runs},\"rejected\":{rejected},\"evictions\":{evictions}}}"
    )
}

/// Renders an error response.
#[must_use]
pub fn error(kind: ErrorKind, message: &str) -> String {
    let mut out = String::from("{\"ok\":false,\"kind\":\"");
    out.push_str(kind.as_str());
    out.push_str("\",\"error\":");
    json::write_str(&mut out, message);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_defaults_to_toml() {
        let req = parse_request("{\"op\":\"submit\",\"spec\":\"[meta]\\nname = \\\"x\\\"\"}")
            .expect("parses");
        assert_eq!(
            req,
            Request::Submit {
                format: SpecFormat::Toml,
                spec: "[meta]\nname = \"x\"".to_owned(),
            }
        );
    }

    #[test]
    fn submit_accepts_json_format() {
        let req = parse_request("{\"op\":\"submit\",\"format\":\"json\",\"spec\":\"{}\"}")
            .expect("parses");
        assert!(matches!(
            req,
            Request::Submit {
                format: SpecFormat::Json,
                ..
            }
        ));
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        assert!(parse_request("not json")
            .unwrap_err()
            .contains("bad request JSON"));
        assert!(parse_request("{}").unwrap_err().contains("\"op\""));
        assert!(parse_request("{\"op\":\"submit\"}")
            .unwrap_err()
            .contains("\"spec\""));
        assert!(
            parse_request("{\"op\":\"submit\",\"spec\":\"\",\"format\":\"yaml\"}")
                .unwrap_err()
                .contains("yaml")
        );
        assert!(parse_request("{\"op\":\"dance\"}")
            .unwrap_err()
            .contains("dance"));
    }

    #[test]
    fn error_responses_escape_the_message() {
        let line = error(ErrorKind::Spec, "bad \"field\"\nline 2");
        assert_eq!(
            line,
            "{\"ok\":false,\"kind\":\"spec\",\"error\":\"bad \\\"field\\\"\\nline 2\"}"
        );
    }
}
