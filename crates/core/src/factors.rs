//! The hotspot factor taxonomy (Section 3 of the paper).

use std::fmt;

/// Host-centric, programmatic influences on propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AlgorithmicFactor {
    /// Pre-programmed target address lists (bot `advscan`/`ipscan`
    /// ranges, flash-worm lists).
    HitList,
    /// A broken generator function (Slammer's OR-corrupted LCG
    /// increment).
    PrngFlaw,
    /// A sound generator seeded from a low-entropy source (Blaster's
    /// `GetTickCount()`).
    PoorEntropySeed,
    /// Deliberate bias toward nearby addresses (CodeRedII's /8 + /16
    /// mask table).
    LocalPreference,
}

impl AlgorithmicFactor {
    /// All algorithmic factors studied in the paper.
    pub const ALL: [AlgorithmicFactor; 4] = [
        AlgorithmicFactor::HitList,
        AlgorithmicFactor::PrngFlaw,
        AlgorithmicFactor::PoorEntropySeed,
        AlgorithmicFactor::LocalPreference,
    ];

    /// One-line description with the paper's exemplar threat.
    pub fn describe(self) -> &'static str {
        match self {
            AlgorithmicFactor::HitList => {
                "pre-programmed target ranges restrict scanning to chosen subnets (botnets)"
            }
            AlgorithmicFactor::PrngFlaw => {
                "a defective generator partitions the space into uneven cycles (Slammer)"
            }
            AlgorithmicFactor::PoorEntropySeed => {
                "a predictable seed collapses trajectories onto few start points (Blaster)"
            }
            AlgorithmicFactor::LocalPreference => {
                "deliberate nearby-address bias concentrates probes (CodeRedII)"
            }
        }
    }
}

impl fmt::Display for AlgorithmicFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlgorithmicFactor::HitList => "hit-list",
            AlgorithmicFactor::PrngFlaw => "PRNG flaw",
            AlgorithmicFactor::PoorEntropySeed => "poor entropy seed",
            AlgorithmicFactor::LocalPreference => "local preference",
        })
    }
}

/// External, network-level influences on propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EnvironmentalFactor {
    /// Routing and filtering policy: enterprise egress filters, upstream
    /// provider blocks.
    RoutingAndFiltering,
    /// Failures and misconfiguration: dropped and mangled packets.
    FailuresAndMisconfiguration,
    /// Topology: NATs, private address space, reachability structure.
    NetworkTopology,
}

impl EnvironmentalFactor {
    /// All environmental factors studied in the paper.
    pub const ALL: [EnvironmentalFactor; 3] = [
        EnvironmentalFactor::RoutingAndFiltering,
        EnvironmentalFactor::FailuresAndMisconfiguration,
        EnvironmentalFactor::NetworkTopology,
    ];

    /// One-line description with the paper's exemplar.
    pub fn describe(self) -> &'static str {
        match self {
            EnvironmentalFactor::RoutingAndFiltering => {
                "border policy hides or blocks probes (Fortune-100 egress, M-block upstream)"
            }
            EnvironmentalFactor::FailuresAndMisconfiguration => {
                "loss and misconfiguration cut infection success along the path"
            }
            EnvironmentalFactor::NetworkTopology => {
                "NAT/private addressing breaks reachability and redirects local preference (192/8)"
            }
        }
    }
}

impl fmt::Display for EnvironmentalFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EnvironmentalFactor::RoutingAndFiltering => "routing & filtering policy",
            EnvironmentalFactor::FailuresAndMisconfiguration => "failures & misconfiguration",
            EnvironmentalFactor::NetworkTopology => "network topology",
        })
    }
}

/// A root cause of a hotspot: one of the two factor classes.
///
/// Note the paper's caveat: factors carry *no intentionality* — a hit-list
/// hotspot is designed, Slammer's cycles are a bug, and both classes mix
/// intended and accidental members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum HotspotFactor {
    /// Host-level, programmatic.
    Algorithmic(AlgorithmicFactor),
    /// Network-level, external.
    Environmental(EnvironmentalFactor),
}

impl HotspotFactor {
    /// Every factor in the taxonomy.
    pub fn all() -> Vec<HotspotFactor> {
        AlgorithmicFactor::ALL
            .into_iter()
            .map(HotspotFactor::Algorithmic)
            .chain(
                EnvironmentalFactor::ALL
                    .into_iter()
                    .map(HotspotFactor::Environmental),
            )
            .collect()
    }

    /// One-line description.
    pub fn describe(self) -> &'static str {
        match self {
            HotspotFactor::Algorithmic(f) => f.describe(),
            HotspotFactor::Environmental(f) => f.describe(),
        }
    }
}

impl fmt::Display for HotspotFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HotspotFactor::Algorithmic(x) => write!(f, "algorithmic: {x}"),
            HotspotFactor::Environmental(x) => write!(f, "environmental: {x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_complete() {
        let all = HotspotFactor::all();
        assert_eq!(all.len(), 7);
        let algorithmic = all
            .iter()
            .filter(|f| matches!(f, HotspotFactor::Algorithmic(_)))
            .count();
        assert_eq!(algorithmic, 4);
    }

    #[test]
    fn descriptions_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for f in HotspotFactor::all() {
            assert!(seen.insert(f.describe()), "duplicate description for {f}");
        }
    }

    #[test]
    fn display_names_readable() {
        assert_eq!(
            HotspotFactor::Algorithmic(AlgorithmicFactor::PrngFlaw).to_string(),
            "algorithmic: PRNG flaw"
        );
        assert_eq!(
            HotspotFactor::Environmental(EnvironmentalFactor::NetworkTopology).to_string(),
            "environmental: network topology"
        );
    }
}
