//! **hotspots** — a reproduction of *"Hotspots: The Root Causes of
//! Non-Uniformity in Self-Propagating Malware"* (Cooke, Mao, Jahanian —
//! DSN 2006).
//!
//! A *hotspot* is a deviation from uniform malware propagation: one
//! address (or block) observes orders of magnitude more — or less — worm
//! traffic than another. The paper decomposes the root causes into
//!
//! * **algorithmic factors** (host-level, programmatic): hit-lists,
//!   flawed PRNGs, bad entropy sources, deliberate local preference;
//! * **environmental factors** (network-level, external): NAT/private
//!   address topology, routing & filtering policy, failures;
//!
//! and shows that the resulting hotspots blind distributed, quorum-based
//! detection systems.
//!
//! This crate is the top of the reproduction stack. It provides:
//!
//! * [`factors`] — the factor taxonomy as types,
//! * [`HotspotReport`] — deviation-from-uniform metrics over observed
//!   per-block counts,
//! * [`seed_inference`] — the Blaster forensics pipeline (hot /24s →
//!   candidate `GetTickCount()` seeds → implied boot times),
//! * [`scenarios`] — one configurable builder per case study / figure of
//!   the paper, shared by the experiment binaries, the examples, and the
//!   integration tests,
//! * [`epidemic`] — the classical logistic baseline used to validate the
//!   probe-level engine,
//! * [`detection_gap`] — the alert-vs-infection race quantified.
//!
//! The substrates live in sibling crates: `hotspots-ipspace`,
//! `hotspots-prng`, `hotspots-stats`, `hotspots-targeting`,
//! `hotspots-netmodel`, `hotspots-telescope`, `hotspots-botnet`, and
//! `hotspots-sim`.
//!
//! # Examples
//!
//! Quantify how non-uniform a per-/24 observation vector is:
//!
//! ```
//! use hotspots::HotspotReport;
//!
//! let uniform = HotspotReport::from_counts(&[10, 11, 9, 10, 10, 11, 9, 10]);
//! assert!(!uniform.is_hotspot());
//!
//! let spiked = HotspotReport::from_counts(&[10, 11, 9, 10, 900, 11, 9, 10]);
//! assert!(spiked.is_hotspot());
//! assert!(spiked.gini > uniform.gini);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod detection_gap;
pub mod epidemic;
pub mod factors;
mod metrics;
pub mod scenarios;
pub mod seed_inference;

pub use factors::{AlgorithmicFactor, EnvironmentalFactor, HotspotFactor};
pub use metrics::HotspotReport;
