//! Figure 4: CodeRedII, NATs, and the 192/8 hotspot.

use hotspots_ipspace::{ims_deployment, special, AddressBlock, Deployment, Ip};
use hotspots_netmodel::{Delivery, DeliveryLedger, Environment, Service};
use hotspots_prng::SplitMix;
use hotspots_sim::apply_nat;
use hotspots_stats::CountHistogram;
use hotspots_targeting::{CodeRed2Scanner, TargetGenerator};
use hotspots_telescope::Observatory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scenarios::{figure_buckets, CoverageRow};

/// Configuration for the CodeRedII measurement study.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CodeRedStudy {
    /// Number of persistently infected hosts.
    pub hosts: usize,
    /// Fraction of hosts behind home NATs at `192.168.x.y`
    /// (the paper's estimate: 15%).
    pub nat_fraction: f64,
    /// Probes each host sends during the observation window.
    pub probes_per_host: u64,
    /// Master seed.
    pub rng_seed: u64,
}

impl Default for CodeRedStudy {
    fn default() -> CodeRedStudy {
        CodeRedStudy {
            hosts: 12_000,
            nat_fraction: 0.15,
            probes_per_host: 20_000,
            rng_seed: 0xc0de_4ed2,
        }
    }
}

/// Runs the study: a mixed public/NATed CodeRedII population scans
/// through the environment into the IMS observatory; returns the
/// Figure 4(a) rows (unique sources per monitored /24, /16 for Z).
pub fn sources_by_block_with(study: &CodeRedStudy, blocks: &[AddressBlock]) -> Vec<CoverageRow> {
    sources_by_block_accounted(study, blocks).0
}

/// [`sources_by_block_with`], also returning the verdict ledger over
/// every probe the population routed (NAT-leaked local deliveries and
/// unroutable private-space drops included).
pub fn sources_by_block_accounted(
    study: &CodeRedStudy,
    blocks: &[AddressBlock],
) -> (Vec<CoverageRow>, DeliveryLedger) {
    let mut ledger = DeliveryLedger::new();
    assert!(
        (0.0..=1.0).contains(&study.nat_fraction),
        "NAT fraction out of range"
    );
    let mut rng = StdRng::seed_from_u64(study.rng_seed);

    // Draw public source addresses, then NAT a fraction of them.
    let mut addrs = Vec::with_capacity(study.hosts);
    while addrs.len() < study.hosts {
        let ip = Ip::new(rng.gen());
        if special::is_globally_routable(ip) {
            addrs.push(ip);
        }
    }
    let mut env = Environment::new();
    let loci = apply_nat(&mut env, &addrs, study.nat_fraction, &mut rng);

    let mut observatory = Observatory::new(blocks.to_vec());
    let mut mix = SplitMix::new(study.rng_seed ^ 0xfeed);
    for locus in &loci {
        let mut worm = CodeRed2Scanner::new(locus.local_address(), SplitMix::new(mix.next_u64()));
        let public_src = locus.public_source(&env);
        for _ in 0..study.probes_per_host {
            let target = worm.next_target();
            let verdict = env.route(*locus, target, Service::CODERED_HTTP, 0.0, &mut rng);
            ledger.record(verdict);
            if let Delivery::Public(dst) = verdict {
                observatory.observe(0.0, public_src, dst);
            }
        }
    }

    // Read the per-bucket unique-source counts out of the observatory.
    let per_block: std::collections::HashMap<&str, CountHistogram<hotspots_ipspace::Bucket24>> =
        observatory
            .iter()
            .map(|(b, log)| (b.label(), log.sources_by_bucket24()))
            .collect();
    let rows = figure_buckets(blocks)
        .into_iter()
        .map(|(block, prefix)| {
            let hist = &per_block[block.as_str()];
            // /16 rows aggregate their /24 buckets; /24 rows are direct
            let unique_sources = if prefix.len() >= 24 {
                hist.count(&hotspots_ipspace::Bucket24::of(prefix.base()))
            } else {
                hist.iter()
                    .filter(|(bucket, _)| prefix.contains(bucket.first_ip()))
                    .map(|(_, c)| c)
                    .sum()
            };
            CoverageRow {
                block,
                prefix,
                unique_sources,
            }
        })
        .collect();
    (rows, ledger)
}

/// [`sources_by_block_with`] on the IMS deployment (Figure 4a).
pub fn sources_by_block(study: &CodeRedStudy) -> Vec<CoverageRow> {
    sources_by_block_with(study, &ims_deployment())
}

/// The paper's per-host observation: "propagation distributions from
/// individual CodeRedII infected hosts reveal two classes of behavior: a
/// uniform scanning behavior, and a scanning behavior with a large bias
/// for the M block."
#[derive(Debug, Clone)]
pub struct BehaviorClassification {
    /// Observed sources whose telescope traffic is M-block-heavy (the
    /// NATed class).
    pub m_biased: Vec<Ip>,
    /// Observed sources with telescope-wide (uniform-ish) traffic.
    pub uniformish: Vec<Ip>,
    /// Ground truth: the public source addresses (gateways) of the hosts
    /// the study actually placed behind NATs.
    pub truly_natted: std::collections::HashSet<Ip>,
}

impl BehaviorClassification {
    /// Fraction of classified sources whose class matches the ground
    /// truth.
    pub fn accuracy(&self) -> f64 {
        let correct = self
            .m_biased
            .iter()
            .filter(|ip| self.truly_natted.contains(ip))
            .count()
            + self
                .uniformish
                .iter()
                .filter(|ip| !self.truly_natted.contains(ip))
                .count();
        let total = self.m_biased.len() + self.uniformish.len();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

/// Classifies observed CodeRedII sources by their M-block share, exactly
/// as the paper infers NATed hosts from scan-profile bias. A source is
/// `m_biased` when more than `m_share_threshold` of its telescope hits
/// land in the M block (a NATed host's /8-preference probes reach M at
/// ~1000× the rate a public host's random probes do).
///
/// Only sources with at least 5 telescope hits are classified (the paper
/// could not classify barely-seen hosts either).
pub fn classify_sources(study: &CodeRedStudy, m_share_threshold: f64) -> BehaviorClassification {
    assert!(
        (0.0..1.0).contains(&m_share_threshold),
        "threshold out of range"
    );
    let blocks = ims_deployment();
    let m_prefix = blocks
        .by_label("M")
        .expect("IMS deployment has an M block") // hotspots-lint: allow(panic-path) reason="IMS deployment has an M block"
        .prefix();
    let mut rng = StdRng::seed_from_u64(study.rng_seed);
    let mut addrs = Vec::with_capacity(study.hosts);
    while addrs.len() < study.hosts {
        let ip = Ip::new(rng.gen());
        if special::is_globally_routable(ip) {
            addrs.push(ip);
        }
    }
    let mut env = Environment::new();
    let loci = apply_nat(&mut env, &addrs, study.nat_fraction, &mut rng);
    let truly_natted: std::collections::HashSet<Ip> = loci
        .iter()
        .filter(|l| matches!(l, hotspots_netmodel::Locus::Private { .. }))
        .map(|l| l.public_source(&env))
        .collect();

    let index = hotspots_telescope::BlockIndex::new(blocks.iter().map(|b| b.prefix()).collect());
    let mut mix = SplitMix::new(study.rng_seed ^ 0xfeed);
    let mut m_biased = Vec::new();
    let mut uniformish = Vec::new();
    for locus in &loci {
        let mut worm = CodeRed2Scanner::new(locus.local_address(), SplitMix::new(mix.next_u64()));
        let mut m_hits = 0u64;
        let mut total_hits = 0u64;
        for _ in 0..study.probes_per_host {
            if let Delivery::Public(dst) = env.route(
                *locus,
                worm.next_target(),
                Service::CODERED_HTTP,
                0.0,
                &mut rng,
            ) {
                if index.find(dst).is_some() {
                    total_hits += 1;
                    if m_prefix.contains(dst) {
                        m_hits += 1;
                    }
                }
            }
        }
        if total_hits < 5 {
            continue; // unclassifiable, like the paper's barely-seen hosts
        }
        let source = locus.public_source(&env);
        if m_hits as f64 / total_hits as f64 > m_share_threshold {
            m_biased.push(source);
        } else {
            uniformish.push(source);
        }
    }
    BehaviorClassification {
        m_biased,
        uniformish,
        truly_natted,
    }
}

/// Figure 4(b)/(c): the quarantine experiment — one captured CodeRedII
/// instance in a honeypot with the given source address, run for
/// `probes` infection attempts; returns probe counts per monitored /24.
///
/// The paper ran 7,567,093 attempts from a non-192/8 host (4b) and
/// 7,567,361 from `192.168.0.100` (4c).
pub fn quarantine_run(
    source: Ip,
    probes: u64,
    blocks: &[AddressBlock],
    rng_seed: u64,
) -> CountHistogram<hotspots_ipspace::Bucket24> {
    let index = hotspots_telescope::BlockIndex::new(blocks.iter().map(|b| b.prefix()).collect());
    let mut worm = CodeRed2Scanner::new(source, SplitMix::new(rng_seed));
    let mut hist = CountHistogram::new();
    for _ in 0..probes {
        let t = worm.next_target();
        if index.find(t).is_some() {
            hist.record(t.bucket24());
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::totals_by_block;

    fn small_study() -> CodeRedStudy {
        CodeRedStudy {
            hosts: 1_500,
            nat_fraction: 0.15,
            probes_per_host: 6_000,
            rng_seed: 11,
        }
    }

    #[test]
    fn accounted_ledger_balances_and_sees_nat_leakage() {
        let study = small_study();
        let (_, ledger) = sources_by_block_accounted(&study, &ims_deployment());
        assert_eq!(ledger.probes(), study.hosts as u64 * study.probes_per_host);
        assert_eq!(ledger.delivered() + ledger.dropped_total(), ledger.probes());
        // NATed hosts' /8-preferring probes hit their own private realm
        // (local deliveries) and foreign private space (unroutable)
        assert!(ledger.delivered_local() > 0);
        assert!(ledger.dropped(hotspots_netmodel::DropReason::UnroutableDestination) > 0);
    }

    #[test]
    fn m_block_is_the_hotspot() {
        // Figure 4a: the M block (inside 192/8) sees far more unique
        // sources per monitored /24 than comparable blocks, because
        // NATed hosts' /8-preference probes leak into public 192/8.
        let rows = sources_by_block(&small_study());
        let totals: std::collections::HashMap<String, u64> =
            totals_by_block(&rows).into_iter().collect();
        // per-/24 normalization (M is a /22 = 4 /24s)
        let m = totals["M"] as f64 / 4.0;
        for (label, slash24s) in [("D", 16.0), ("E", 8.0), ("F", 4.0), ("H", 64.0)] {
            let other = totals[label] as f64 / slash24s;
            assert!(
                m > 3.0 * other.max(0.1),
                "M per-/24 rate {m} not clearly above {label} rate {other}"
            );
        }
    }

    #[test]
    fn without_nat_no_m_hotspot() {
        let rows = sources_by_block(&CodeRedStudy {
            nat_fraction: 0.0,
            ..small_study()
        });
        let totals: std::collections::HashMap<String, u64> =
            totals_by_block(&rows).into_iter().collect();
        let m = totals["M"] as f64 / 4.0;
        let d = totals["D"] as f64 / 16.0;
        // with no NATed hosts, M behaves like any other block
        assert!(
            m < 3.0 * (d + 1.0),
            "M rate {m} suspiciously hot without NAT (D rate {d})"
        );
    }

    #[test]
    fn quarantine_192_168_source_spikes_m() {
        // Figure 4b vs 4c at reduced probe count.
        let blocks = ims_deployment();
        let outside = quarantine_run(Ip::from_octets(57, 20, 3, 9), 400_000, &blocks, 5);
        let natted = quarantine_run(Ip::from_octets(192, 168, 0, 100), 400_000, &blocks, 5);
        let m_prefix: hotspots_ipspace::Prefix = "192.40.16.0/22".parse().unwrap();
        let m_hits = |h: &CountHistogram<hotspots_ipspace::Bucket24>| -> u64 {
            h.iter()
                .filter(|(b, _)| m_prefix.contains(b.first_ip()))
                .map(|(_, c)| c)
                .sum()
        };
        let outside_m = m_hits(&outside);
        let natted_m = m_hits(&natted);
        assert!(
            natted_m > 10 * (outside_m + 1),
            "192.168 quarantine M hits {natted_m} vs outside {outside_m}"
        );
    }

    #[test]
    fn quarantine_outside_source_rarely_reaches_sensors() {
        // Figure 4b's text: 7.5M attempts, yet "only a small number of
        // attempts reach the monitored blocks" (local preference).
        let blocks = ims_deployment();
        let hist = quarantine_run(Ip::from_octets(57, 20, 3, 9), 200_000, &blocks, 9);
        let rate = hist.total() as f64 / 200_000.0;
        // 1/8 random probes × ~0.4% monitored space ≈ 5e-4, far below 1%
        assert!(rate < 0.01, "sensor hit rate {rate} too high");
    }

    #[test]
    fn behavior_classes_recover_the_natted_hosts() {
        // long per-host observation so the per-source M-share is
        // statistically meaningful
        let study = CodeRedStudy {
            hosts: 250,
            nat_fraction: 0.2,
            probes_per_host: 150_000,
            rng_seed: 77,
        };
        let classes = classify_sources(&study, 0.02);
        assert!(!classes.m_biased.is_empty(), "no biased class found");
        assert!(!classes.uniformish.is_empty(), "no uniform class found");
        let acc = classes.accuracy();
        assert!(acc > 0.85, "classification accuracy {acc}");
        // the two classes exist, as the paper observed
        let biased_natted = classes
            .m_biased
            .iter()
            .filter(|ip| classes.truly_natted.contains(ip))
            .count();
        assert!(
            biased_natted * 2 > classes.m_biased.len(),
            "biased class should be dominated by NATed gateways"
        );
    }

    #[test]
    fn study_is_deterministic() {
        let a = sources_by_block(&small_study());
        let b = sources_by_block(&small_study());
        assert_eq!(a, b);
    }
}
