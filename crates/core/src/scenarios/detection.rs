//! Figure 5: how hotspots blind distributed detection.

use hotspots_ipspace::Prefix;
use hotspots_netmodel::{DeliveryLedger, Environment};
use hotspots_sim::{
    apply_nat, apply_nat_shared, occupied_slash16s, paper_codered_population,
    synthetic_codered_population, CodeRed2Worm, Engine, FieldObserver, HitListWorm, Population,
    SimConfig,
};
use hotspots_stats::TimeSeries;
use hotspots_targeting::HitList;
use hotspots_telescope::{placement, DetectorField};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration shared by the Figure 5 experiments. Paper values:
/// 134,586 vulnerable hosts in 47 /8s, 25 seeds, 10 probes/s, alert
/// threshold 5.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DetectionStudy {
    /// Vulnerable population size (ignored when `paper_profile` is set).
    pub population: usize,
    /// Number of /8s the population clusters into (ignored when
    /// `paper_profile` is set).
    pub slash8s: usize,
    /// Use the coverage-calibrated paper population (134,586 hosts,
    /// 4,481 /16s, published top-k coverages) instead of the tunable
    /// synthetic one.
    pub paper_profile: bool,
    /// Seed (initially infected) hosts.
    pub seeds: usize,
    /// Probes per second per infected host.
    pub scan_rate: f64,
    /// Per-sensor alert threshold (worm payloads).
    pub alert_threshold: u64,
    /// Simulation cut-off in seconds.
    pub max_time: f64,
    /// Stop once this infected fraction is reached.
    pub stop_at_fraction: f64,
    /// Master seed.
    pub rng_seed: u64,
}

impl Default for DetectionStudy {
    fn default() -> DetectionStudy {
        DetectionStudy {
            population: 134_586,
            slash8s: 47,
            paper_profile: false,
            seeds: 25,
            scan_rate: 10.0,
            alert_threshold: 5,
            max_time: 20_000.0,
            stop_at_fraction: 0.95,
            rng_seed: 0xf15_2006,
        }
    }
}

impl DetectionStudy {
    fn sim_config(&self) -> SimConfig {
        SimConfig {
            scan_rate: self.scan_rate,
            seeds: self.seeds,
            dt: 1.0,
            max_time: self.max_time,
            stop_at_fraction: Some(self.stop_at_fraction),
            rng_seed: self.rng_seed,
            ..SimConfig::default()
        }
    }

    /// The study's vulnerable population (deterministic).
    pub fn draw_population(&self) -> Vec<hotspots_ipspace::Ip> {
        let mut rng = StdRng::seed_from_u64(self.rng_seed ^ 0x9090);
        if self.paper_profile {
            paper_codered_population(&mut rng)
        } else {
            synthetic_codered_population(self.population, self.slash8s, &mut rng)
        }
    }

    /// Effective population size (accounts for the paper profile).
    pub fn population_size(&self) -> usize {
        if self.paper_profile {
            134_586
        } else {
            self.population
        }
    }
}

/// One hit-list experiment run (Figures 5a and 5b share it: 5a reads the
/// infection curve, 5b the alert curve).
#[derive(Debug)]
pub struct HitListRun {
    /// Number of /16 prefixes in the hit-list.
    pub list_size: usize,
    /// Fraction of the vulnerable population the list covers.
    pub coverage: f64,
    /// Fraction infected vs time (Fig 5a).
    pub infection_curve: TimeSeries,
    /// Fraction of sensors alerting vs time (Fig 5b).
    pub alert_curve: TimeSeries,
    /// Sensors deployed.
    pub sensors: usize,
    /// Sensors that had alerted by the end.
    pub sensors_alerted: usize,
    /// Final infected fraction.
    pub final_infected: f64,
    /// Hosts ever infected.
    pub infected_hosts: u64,
    /// Per-verdict probe accounting for the run.
    pub ledger: DeliveryLedger,
    /// Simulated seconds the run covered.
    pub sim_seconds: f64,
}

/// Runs the hit-list experiments for each requested list size
/// (`None` entries mean "every occupied /16" — the paper's 4481 case).
///
/// Sensors: one /24 detector placed randomly inside each occupied /16,
/// alerting after `alert_threshold` payloads.
pub fn hitlist_runs(study: &DetectionStudy, sizes: &[Option<usize>]) -> Vec<HitListRun> {
    let population_addrs = study.draw_population();
    let occupied = occupied_slash16s(&population_addrs);
    let mut rng = StdRng::seed_from_u64(study.rng_seed ^ 0x5e50);
    let sensors: Vec<Prefix> = placement::one_per_prefix(&occupied, &mut rng);

    sizes
        .iter()
        .map(|size| {
            let k = size.unwrap_or(occupied.len()).min(occupied.len());
            let list = HitList::top_k_slash16(&population_addrs, k);
            let coverage = list.coverage(&population_addrs);
            let field = DetectorField::new(sensors.clone(), study.alert_threshold);
            let mut observer = FieldObserver::new(field);
            // a sub-coverage list can never infect the whole population:
            // stop relative to what the list can reach (plus seed slack)
            let seed_slack = study.seeds as f64 / study.population_size() as f64;
            let mut config = study.sim_config();
            config.stop_at_fraction =
                Some((study.stop_at_fraction * coverage + seed_slack).min(1.0));
            let mut engine = Engine::new(
                config,
                Population::from_public(population_addrs.iter().copied()),
                Environment::new(),
                Box::new(HitListWorm::new(list)),
            );
            let result = engine.run(&mut observer);
            let field = observer.into_field();
            HitListRun {
                list_size: k,
                coverage,
                infection_curve: result.infection_curve,
                alert_curve: field.alert_curve(format!("{k}-prefix hit-list alerts")),
                sensors: field.len(),
                sensors_alerted: field.alerted(),
                final_infected: result.infected as f64 / result.population as f64,
                infected_hosts: result.infected as u64,
                ledger: result.ledger,
                sim_seconds: result.elapsed,
            }
        })
        .collect()
}

/// Sensor placement strategies compared in Figure 5(c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Placement {
    /// `n` /24 sensors uniformly random in routable space.
    Random {
        /// Number of sensors.
        sensors: usize,
    },
    /// `n` /24 sensors random inside the top-`k` /8s by vulnerable hosts.
    TopSlash8s {
        /// Number of sensors.
        sensors: usize,
        /// Number of /8s considered.
        k: usize,
    },
    /// One /24 per public /16 of `192.0.0.0/8` (255 sensors), exploiting
    /// the NAT hotspot.
    Inside192,
}

impl Placement {
    fn build(self, population: &[hotspots_ipspace::Ip], rng: &mut StdRng) -> Vec<Prefix> {
        match self {
            Placement::Random { sensors } => placement::random_slash24s(sensors, &[], rng),
            Placement::TopSlash8s { sensors, k } => {
                placement::inside_top_slash8s(population, k, sensors, rng)
            }
            Placement::Inside192 => placement::inside_192_per_slash16(rng),
        }
    }
}

/// One NAT/placement experiment run (Figure 5c).
#[derive(Debug)]
pub struct NatRun {
    /// The placement strategy used.
    pub placement: Placement,
    /// Fraction infected vs time.
    pub infection_curve: TimeSeries,
    /// Fraction of sensors alerting vs time.
    pub alert_curve: TimeSeries,
    /// Sensors deployed.
    pub sensors: usize,
    /// Sensors alerted by the end.
    pub sensors_alerted: usize,
    /// Alerted sensor fraction at the moment 20% of the population was
    /// infected (the paper's comparison point).
    pub alerted_at_20pct_infected: f64,
    /// Hosts ever infected.
    pub infected_hosts: u64,
    /// Per-verdict probe accounting for the run.
    pub ledger: DeliveryLedger,
    /// Simulated seconds the run covered.
    pub sim_seconds: f64,
}

/// How NATed hosts are wired into the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NatTopology {
    /// All NATed hosts share one `192.168/16` private space (the paper's
    /// Figure 5(c) semantics: the private cluster can ignite).
    Shared,
    /// Each NATed host sits alone behind its own home NAT (stricter
    /// isolation: private hosts are unreachable even by each other — the
    /// ablation contrast).
    Isolated,
}

/// Runs the Figure 5(c) experiment: a CodeRedII-type worm over a
/// population with `nat_fraction` of hosts NATed into `192.168/16`,
/// detected by a field placed per `placement`.
pub fn nat_run(study: &DetectionStudy, nat_fraction: f64, placement_kind: Placement) -> NatRun {
    nat_run_with_topology(study, nat_fraction, placement_kind, NatTopology::Shared)
}

/// [`nat_run`] with an explicit NAT wiring (the topology ablation).
pub fn nat_run_with_topology(
    study: &DetectionStudy,
    nat_fraction: f64,
    placement_kind: Placement,
    topology: NatTopology,
) -> NatRun {
    let population_addrs = study.draw_population();
    let mut rng = StdRng::seed_from_u64(study.rng_seed ^ 0xa117);
    let mut env = Environment::new();
    let loci = match topology {
        NatTopology::Shared => {
            apply_nat_shared(&mut env, &population_addrs, nat_fraction, &mut rng)
        }
        NatTopology::Isolated => apply_nat(&mut env, &population_addrs, nat_fraction, &mut rng),
    };
    let sensors = placement_kind.build(&population_addrs, &mut rng);
    let field = DetectorField::new(sensors, study.alert_threshold);
    let mut observer = FieldObserver::new(field);
    let mut engine = Engine::new(
        study.sim_config(),
        Population::from_loci(loci),
        env,
        Box::new(CodeRed2Worm),
    );
    let result = engine.run(&mut observer);
    let field = observer.into_field();
    let alert_curve = field.alert_curve(format!("{placement_kind:?} alerts"));
    let t20 = result.infection_curve.time_to_reach(0.2);
    let alerted_at_20pct_infected = t20.map_or(0.0, |t| alert_curve.value_at(t));
    NatRun {
        placement: placement_kind,
        infection_curve: result.infection_curve,
        sensors: field.len(),
        sensors_alerted: field.alerted(),
        alert_curve,
        alerted_at_20pct_infected,
        infected_hosts: result.infected as u64,
        ledger: result.ledger,
        sim_seconds: result.elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small but structurally faithful study for test speed.
    fn small_study() -> DetectionStudy {
        DetectionStudy {
            population: 2_500,
            slash8s: 12,
            paper_profile: false,
            seeds: 10,
            scan_rate: 25.0,
            alert_threshold: 5,
            max_time: 2_500.0,
            stop_at_fraction: 0.9,
            rng_seed: 77,
        }
    }

    #[test]
    fn smaller_hitlists_infect_faster_but_cover_less() {
        let study = small_study();
        let runs = hitlist_runs(&study, &[Some(3), None]);
        assert_eq!(runs.len(), 2);
        let (small, full) = (&runs[0], &runs[1]);
        assert!(small.coverage < full.coverage);
        assert!((full.coverage - 1.0).abs() < 1e-9);
        // the denser (smaller) list reaches ITS saturation sooner than
        // the full list reaches its own
        let small_sat = small
            .infection_curve
            .time_to_reach(0.9 * small.coverage)
            .expect("small list saturates");
        let full_sat = full.infection_curve.time_to_reach(0.8);
        if let Some(full_sat) = full_sat {
            assert!(
                small_sat < full_sat,
                "small list ({small_sat}s) not faster than full ({full_sat}s)"
            );
        }
        // Fig 5a's other claim: the small list never infects (much) more
        // than its coverage — only out-of-list seed hosts can exceed it.
        let seed_slack = study.seeds as f64 / study.population_size() as f64;
        assert!(small.final_infected <= small.coverage + seed_slack + 1e-9);
    }

    #[test]
    fn hitlist_detection_leaves_most_sensors_silent() {
        // Figure 5b: even at high infection, only a minority of sensors
        // alert — quorum detection fails.
        let study = small_study();
        let runs = hitlist_runs(&study, &[Some(3)]);
        let run = &runs[0];
        assert!(run.final_infected >= 0.9 * run.coverage);
        let alerted_fraction = run.sensors_alerted as f64 / run.sensors as f64;
        assert!(
            alerted_fraction < 0.5,
            "hit-list outbreak alerted {alerted_fraction} of sensors"
        );
    }

    #[test]
    fn inside_192_placement_beats_random() {
        // Figure 5c: 255 sensors inside the hotspot /8 alert faster than
        // 10k (here: fewer) random sensors.
        let study = small_study();
        let random = nat_run(&study, 0.25, Placement::Random { sensors: 300 });
        let hotspot = nat_run(&study, 0.25, Placement::Inside192);
        assert!(
            hotspot.alerted_at_20pct_infected > random.alerted_at_20pct_infected,
            "hotspot placement {} not better than random {}",
            hotspot.alerted_at_20pct_infected,
            random.alerted_at_20pct_infected
        );
        assert_eq!(hotspot.sensors, 255);
    }

    #[test]
    fn isolated_nat_topology_suppresses_the_private_ignition() {
        // the ablation: with per-home NATs the 192.168 cluster can never
        // ignite, so the Inside192 placement loses its magic
        let study = small_study();
        let shared = nat_run_with_topology(&study, 0.25, Placement::Inside192, NatTopology::Shared);
        let isolated =
            nat_run_with_topology(&study, 0.25, Placement::Inside192, NatTopology::Isolated);
        assert!(
            shared.sensors_alerted > 4 * (isolated.sensors_alerted + 1),
            "shared {} vs isolated {}",
            shared.sensors_alerted,
            isolated.sensors_alerted
        );
    }

    #[test]
    fn run_ledgers_balance() {
        let study = small_study();
        let hit = &hitlist_runs(&study, &[Some(3)])[0];
        assert!(hit.ledger.probes() > 0);
        assert_eq!(
            hit.ledger.delivered() + hit.ledger.dropped_total(),
            hit.ledger.probes()
        );
        assert!(hit.sim_seconds > 0.0);
        assert!(hit.infected_hosts >= study.seeds as u64);

        let nat = nat_run(&study, 0.25, Placement::Inside192);
        assert_eq!(
            nat.ledger.delivered() + nat.ledger.dropped_total(),
            nat.ledger.probes()
        );
        // NATed CodeRedII probes leak into private space → local
        // deliveries and unroutable drops both occur
        assert!(nat.ledger.delivered_local() > 0);
        assert!(nat.ledger.dropped_total() > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let study = small_study();
        let a = nat_run(&study, 0.15, Placement::Random { sensors: 100 });
        let b = nat_run(&study, 0.15, Placement::Random { sensors: 100 });
        assert_eq!(a.sensors_alerted, b.sensors_alerted);
        assert_eq!(
            a.infection_curve.last_value(),
            b.infection_curve.last_value()
        );
    }
}
