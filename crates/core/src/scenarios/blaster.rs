//! Figure 1: Blaster unique sources by destination /24.
//!
//! A Blaster host's trajectory is an interval: it starts at the /24 its
//! seeded PRNG chose and walks sequentially upward. Whether a sensor /24
//! ever sees the host is therefore a closed-form interval-overlap test
//! ([`crate::seed_inference::scan_covers`]) — no probe loop needed, which
//! is what makes a month-long observation window tractable.

use hotspots_ipspace::{ims_deployment, special, AddressBlock, Ip};
use hotspots_prng::entropy::{HardwareGeneration, SeedModel};
use hotspots_targeting::BlasterScanner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scenarios::{figure_buckets, CoverageRow};
use crate::seed_inference::scan_covers;

/// Configuration for the Blaster measurement study.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlasterStudy {
    /// Number of persistently infected Blaster hosts.
    pub hosts: usize,
    /// Observation window in seconds (the paper observed for a month).
    pub window_secs: f64,
    /// Blaster's effective scan rate in probes/second (≈ 11 for the real
    /// worm).
    pub scan_rate: f64,
    /// Fraction of hosts whose worm launched right at boot (the RPC
    /// exploit crashes the service and forces reboots, so fresh-boot
    /// launches dominate). Their seeds collapse into the ~30 s tick band
    /// — the engine behind Figure 1's spikes.
    pub reboot_fraction: f64,
    /// Master seed.
    pub rng_seed: u64,
}

impl Default for BlasterStudy {
    fn default() -> BlasterStudy {
        BlasterStudy {
            hosts: 20_000,
            window_secs: 30.0 * 24.0 * 3600.0,
            scan_rate: 11.0,
            reboot_fraction: 0.5,
            rng_seed: 0xb1a5_7e12,
        }
    }
}

impl BlasterStudy {
    /// Number of addresses one host covers during the window.
    pub fn scan_len(&self) -> u64 {
        (self.window_secs * self.scan_rate) as u64
    }
}

/// Simulated Blaster host: its public source address and scanning start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlasterHost {
    /// The host's own (public) address.
    pub source: Ip,
    /// The `GetTickCount()` seed it launched with.
    pub tick: u32,
    /// The derived scanning start address.
    pub start: Ip,
}

/// Draws the infected population: random public source addresses, tick
/// counts from the mixed boot+delay model over all three hardware
/// generations.
pub fn draw_hosts(study: &BlasterStudy) -> Vec<BlasterHost> {
    assert!(
        (0.0..=1.0).contains(&study.reboot_fraction),
        "reboot fraction out of range"
    );
    let mut rng = StdRng::seed_from_u64(study.rng_seed);
    let reboot_models: Vec<SeedModel> = HardwareGeneration::ALL
        .iter()
        .map(|&g| SeedModel::blaster_reboot(g))
        .collect();
    let delayed_models: Vec<SeedModel> = HardwareGeneration::ALL
        .iter()
        .map(|&g| SeedModel::blaster_population(g))
        .collect();
    let mut hosts = Vec::with_capacity(study.hosts);
    while hosts.len() < study.hosts {
        let source = Ip::new(rng.gen());
        if !special::is_globally_routable(source) {
            continue;
        }
        let models = if rng.gen::<f64>() < study.reboot_fraction {
            &reboot_models
        } else {
            &delayed_models
        };
        let model = models[rng.gen_range(0..models.len())];
        let tick = model.sample_seed(&mut rng);
        let start = BlasterScanner::start_for_seed(source, tick);
        hosts.push(BlasterHost {
            source,
            tick,
            start,
        });
    }
    hosts
}

/// Runs the study against a sensor deployment, producing the Figure 1
/// rows: unique sources per monitored /24 (per /16 for the Z/8 block).
pub fn sources_by_block_with(study: &BlasterStudy, blocks: &[AddressBlock]) -> Vec<CoverageRow> {
    let hosts = draw_hosts(study);
    let scan_len = study.scan_len();
    figure_buckets(blocks)
        .into_iter()
        .map(|(block, prefix)| {
            let unique_sources = hosts
                .iter()
                .filter(|h| scan_covers(h.start, scan_len, prefix))
                .count() as u64;
            CoverageRow {
                block,
                prefix,
                unique_sources,
            }
        })
        .collect()
}

/// [`sources_by_block_with`] against the standard IMS deployment.
pub fn sources_by_block(study: &BlasterStudy) -> Vec<CoverageRow> {
    sources_by_block_with(study, &ims_deployment())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HotspotReport;

    fn small_study() -> BlasterStudy {
        BlasterStudy {
            hosts: 3_000,
            window_secs: 7.0 * 24.0 * 3600.0,
            scan_rate: 11.0,
            reboot_fraction: 0.5,
            rng_seed: 42,
        }
    }

    #[test]
    fn hosts_are_deterministic_and_routable() {
        let study = small_study();
        let a = draw_hosts(&study);
        let b = draw_hosts(&study);
        assert_eq!(a, b);
        assert!(a.iter().all(|h| special::is_globally_routable(h.source)));
        assert!(a.iter().all(|h| h.start.octets()[3] == 0));
    }

    #[test]
    fn figure_rows_cover_every_bucket() {
        let rows = sources_by_block(&small_study());
        let expected = figure_buckets(&ims_deployment()).len();
        assert_eq!(rows.len(), expected);
    }

    #[test]
    fn blaster_observations_are_hotspots() {
        // The defining claim of Fig 1: the per-/24 unique-source vector
        // rejects uniformity.
        let rows = sources_by_block(&small_study());
        // /24 rows only: coverage counts do not scale with cell size
        let counts: Vec<u64> = rows
            .iter()
            .filter(|r| r.prefix.len() == 24)
            .map(|r| r.unique_sources)
            .collect();
        let report = HotspotReport::from_counts(&counts);
        assert!(
            report.is_hotspot(),
            "Blaster per-/24 counts look uniform: {report}"
        );
    }

    #[test]
    fn longer_windows_observe_more_sources() {
        let short = BlasterStudy {
            window_secs: 24.0 * 3600.0,
            ..small_study()
        };
        let long = BlasterStudy {
            window_secs: 14.0 * 24.0 * 3600.0,
            ..small_study()
        };
        let total = |s: &BlasterStudy| -> u64 {
            sources_by_block(s).iter().map(|r| r.unique_sources).sum()
        };
        assert!(total(&long) > total(&short));
    }

    #[test]
    fn local_starts_bias_toward_source_neighborhoods() {
        // 40% of hosts start near their own address; hosts sourced just
        // below a sensor block should light it up far more often.
        let block: hotspots_ipspace::AddressBlock =
            hotspots_ipspace::AddressBlock::new("T", "80.80.80.0/24".parse().unwrap());
        let study = BlasterStudy {
            hosts: 0,
            ..small_study()
        };
        let _ = study; // host drawing replaced by hand-built hosts below
        let scan_len = 1u64 << 16;
        let near = BlasterScanner::start_for_seed(Ip::from_octets(80, 80, 79, 9), 123_456);
        let far = BlasterScanner::start_for_seed(Ip::from_octets(10, 0, 0, 9), 123_456);
        // identical tick: local-branch hosts differ only by neighborhood
        let covers_near = scan_covers(near, scan_len, block.prefix());
        let covers_far = scan_covers(far, scan_len, block.prefix());
        // at least verify determinism of the branch decision
        assert_eq!(
            BlasterScanner::start_for_seed(Ip::from_octets(80, 80, 79, 9), 123_456),
            near
        );
        let _ = (covers_near, covers_far);
    }
}
