//! Case-study scenario builders: one per table/figure of the paper.
//!
//! Each scenario is a configurable, deterministic pipeline shared by the
//! experiment binaries (`hotspots-experiments`), the runnable examples,
//! and the integration tests — the experiments run them at paper scale,
//! the tests at reduced scale.
//!
//! | Paper artifact | Builder |
//! |---|---|
//! | Fig 1 (Blaster by /24) | [`blaster::sources_by_block`] |
//! | Fig 2 (Slammer by /24) | [`slammer::sources_by_block`] |
//! | Fig 3a/3b (per-host Slammer) | [`slammer::host_histogram`] |
//! | Fig 3c (LCG cycle periods) | [`slammer::cycle_bands`] |
//! | Fig 4a (CodeRedII by /24) | [`codered::sources_by_block`] |
//! | Fig 4b/4c (quarantine runs) | [`codered::quarantine_run`] |
//! | Fig 5a/5b (hit-list outbreak & detection) | [`detection::hitlist_runs`] |
//! | Fig 5c (NAT outbreak & placement) | [`detection::nat_run`] |
//! | Table 1 (bot commands) | `hotspots_botnet::corpus` |
//! | Table 2 (enterprise vs broadband) | [`filtering::table2`] |

pub mod blaster;
pub mod codered;
pub mod detection;
pub mod filtering;
pub mod slammer;

use hotspots_ipspace::Prefix;

/// One output row of a measurement-style figure: a monitored sub-prefix
/// (usually a /24, or a /16 for the Z/8 block) and the number of unique
/// worm sources it observed, tagged with its sensor block label.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoverageRow {
    /// The sensor block label (`"A"`, `"H"`, …).
    pub block: String,
    /// The aggregation prefix within the block.
    pub prefix: Prefix,
    /// Unique worm sources observed at this prefix.
    pub unique_sources: u64,
}

/// Aggregates coverage rows into per-block totals, preserving block
/// order of first appearance.
pub fn totals_by_block(rows: &[CoverageRow]) -> Vec<(String, u64)> {
    let mut order: Vec<String> = Vec::new();
    let mut totals: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    for row in rows {
        if !totals.contains_key(row.block.as_str()) {
            order.push(row.block.clone());
        }
        *totals.entry(row.block.as_str()).or_insert(0) += row.unique_sources;
    }
    order
        .into_iter()
        .map(|label| {
            let total = totals[label.as_str()];
            (label, total)
        })
        .collect()
}

/// The per-/24 (or per-/16 for /8-sized blocks) aggregation prefixes of a
/// sensor deployment, with block labels — the x-axis of the measurement
/// figures. Blocks of /8 size are reported at /16 granularity to keep
/// figure outputs tractable.
pub fn figure_buckets(blocks: &[hotspots_ipspace::AddressBlock]) -> Vec<(String, Prefix)> {
    let mut out = Vec::new();
    for block in blocks {
        let granularity = if block.prefix().len() <= 12 { 16 } else { 24 };
        let sub_len = granularity.max(block.prefix().len());
        for sub in block.prefix().subnets(sub_len) {
            out.push((block.label().to_owned(), sub));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspots_ipspace::ims_deployment;

    #[test]
    fn figure_buckets_cover_deployment() {
        let buckets = figure_buckets(&ims_deployment());
        // Z/8 contributes 256 /16 rows; the others contribute /24 rows
        let z_rows = buckets.iter().filter(|(l, _)| l == "Z").count();
        assert_eq!(z_rows, 256);
        let h_rows = buckets.iter().filter(|(l, _)| l == "H").count();
        assert_eq!(h_rows, 64); // a /18 is 64 /24s
        let g_rows = buckets.iter().filter(|(l, _)| l == "G").count();
        assert_eq!(g_rows, 1); // a /25 keeps its own granularity
    }

    #[test]
    fn totals_by_block_sums_and_orders() {
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        let rows = vec![
            CoverageRow {
                block: "B".into(),
                prefix: p,
                unique_sources: 2,
            },
            CoverageRow {
                block: "A".into(),
                prefix: p,
                unique_sources: 3,
            },
            CoverageRow {
                block: "B".into(),
                prefix: p,
                unique_sources: 5,
            },
        ];
        let totals = totals_by_block(&rows);
        assert_eq!(totals, vec![("B".to_owned(), 7), ("A".to_owned(), 3)]);
    }
}
