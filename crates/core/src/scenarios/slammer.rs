//! Figures 2 and 3: Slammer's cycle-driven hotspots.
//!
//! Over an observation window much longer than a cycle traversal (the
//! paper observed for over a month while Slammer scanned thousands of
//! probes per second), an infected host is seen at a monitored /24 **iff
//! its PRNG cycle passes through that /24**. That turns the unique-source
//! figure into exact set arithmetic over the algebraic cycle
//! decomposition — no probe loop: classify every monitored bucket's
//! cycles once, bucket the host population by (DLL, cycle), and join.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use hotspots_ipspace::{ims_deployment, AddressBlock, Deployment, Ip, Prefix};
use hotspots_netmodel::{FilterRule, FilterTable, Service};
use hotspots_prng::cycles::{AffineMap, CycleBand, CycleId};
use hotspots_prng::{SplitMix, SqlsortDll};
use hotspots_stats::CountHistogram;
use hotspots_targeting::{SlammerScanner, TargetGenerator};
use hotspots_telescope::BlockIndex;

use crate::scenarios::{figure_buckets, CoverageRow};

/// Configuration for the Slammer measurement study.
#[derive(Debug, Clone)]
pub struct SlammerStudy {
    /// Number of persistently infected Slammer hosts (the paper observed
    /// tens of thousands of unique sources).
    pub hosts: usize,
    /// Upstream filtering policy (the paper's M block was blocked for
    /// UDP/1434 at its provider). Use
    /// [`SlammerStudy::with_m_block_filter`] for the paper setup.
    pub filters: FilterTable,
    /// Master seed.
    pub rng_seed: u64,
}

impl Default for SlammerStudy {
    fn default() -> SlammerStudy {
        SlammerStudy {
            hosts: 75_000,
            filters: FilterTable::new(),
            rng_seed: 0x51a3_3e12,
        }
    }
}

impl SlammerStudy {
    /// Adds the paper's upstream block: drop UDP/1434 toward the M block.
    // hotspots-lint: certifies(panic-free) reason="the IMS deployment literal always carries an M block"
    pub fn with_m_block_filter(mut self) -> SlammerStudy {
        let m = ims_deployment()
            .by_label("M")
            .expect("IMS deployment has an M block")
            .prefix();
        self.filters
            .push(FilterRule::ingress(m, Some(Service::SLAMMER_SQL)));
        self
    }
}

/// The population keyed the way the mathematics wants it: how many hosts
/// run each DLL variant on each cycle.
pub type CyclePopulation = HashMap<(SqlsortDll, CycleId), u64>;

/// Draws `hosts` infected hosts (uniform DLL mix, uniform 32-bit seeds)
/// and buckets them by the cycle their trajectory lives on.
// hotspots-lint: certifies(panic-free) reason="slammer maps support every cycle id they enumerate"
pub fn draw_cycle_population(study: &SlammerStudy) -> CyclePopulation {
    let maps: Vec<(SqlsortDll, AffineMap)> = SqlsortDll::ALL
        .iter()
        .map(|&dll| (dll, AffineMap::slammer(dll)))
        .collect();
    let mut mix = SplitMix::new(study.rng_seed);
    let mut pop: CyclePopulation = HashMap::new();
    for _ in 0..study.hosts {
        let (dll, map) = &maps[(mix.next_u64() % 3) as usize];
        let seed = mix.next_u64() as u32;
        // the trajectory enters its cycle at the first step
        let id = map
            .cycle_id(map.apply(seed))
            .expect("slammer maps support cycle ids");
        *pop.entry((*dll, id)).or_insert(0) += 1;
    }
    pop
}

/// The set of cycles (per DLL) whose target addresses enter `prefix`.
// hotspots-lint: certifies(panic-free) reason="the cycle map covers every 32-bit state"
pub fn cycles_through(prefix: Prefix) -> BTreeMap<SqlsortDll, BTreeSet<CycleId>> {
    let mut out = BTreeMap::new();
    for dll in SqlsortDll::ALL {
        let map = AffineMap::slammer(dll);
        // A /24 (or /16) pins the low state bits, so the valuation — and
        // with it the cycle id — is constant across almost the whole
        // bucket; sampling a spread of addresses plus exhaustive /24
        // handling keeps this both fast and exact.
        let ids: BTreeSet<CycleId> = if prefix.size() <= 256 {
            prefix
                .iter()
                .map(|ip| map.cycle_id(ip.to_le_state()).expect("valid map"))
                .collect()
        } else {
            // sample boundaries and a stride; valuations can only differ
            // at addresses whose low-bit offset degenerates, which the
            // stride + boundary sample catches in practice (verified
            // against exhaustive /24 scans in tests)
            let step = (prefix.size() / 512).max(1);
            (0..prefix.size())
                .step_by(step as usize)
                .chain([prefix.size() - 1])
                .map(|i| {
                    map.cycle_id(prefix.nth(i).to_le_state())
                        .expect("valid map")
                })
                .collect()
        };
        out.insert(dll, ids);
    }
    out
}

/// Runs the study: unique Slammer sources per monitored bucket, with
/// filtering applied (Figure 2).
pub fn sources_by_block_with(study: &SlammerStudy, blocks: &[AddressBlock]) -> Vec<CoverageRow> {
    let pop = draw_cycle_population(study);
    figure_buckets(blocks)
        .into_iter()
        .map(|(block, prefix)| {
            // upstream ingress filter kills observation entirely
            let filtered = study
                .filters
                .check(Ip::MIN, prefix.base(), Service::SLAMMER_SQL)
                .is_some();
            let unique_sources = if filtered {
                0
            } else {
                cycles_through(prefix)
                    .iter()
                    .flat_map(|(dll, ids)| {
                        ids.iter()
                            .map(|id| pop.get(&(*dll, *id)).copied().unwrap_or(0))
                    })
                    .sum()
            };
            CoverageRow {
                block,
                prefix,
                unique_sources,
            }
        })
        .collect()
}

/// [`sources_by_block_with`] on the IMS deployment (Figure 2's setup).
pub fn sources_by_block(study: &SlammerStudy) -> Vec<CoverageRow> {
    sources_by_block_with(study, &ims_deployment())
}

/// Block-level unique Slammer sources: the number of hosts whose cycle
/// enters the block *anywhere* (each host counted once per block, unlike
/// the per-/24 rows of [`sources_by_block`], where one host legitimately
/// appears under many /24s).
pub fn unique_sources_per_block(
    study: &SlammerStudy,
    blocks: &[AddressBlock],
) -> Vec<(String, u64)> {
    let pop = draw_cycle_population(study);
    blocks
        .iter()
        .map(|block| {
            let filtered = study
                .filters
                .check(Ip::MIN, block.prefix().base(), Service::SLAMMER_SQL)
                .is_some();
            if filtered {
                return (block.label().to_owned(), 0);
            }
            let mut ids: BTreeMap<SqlsortDll, BTreeSet<CycleId>> = BTreeMap::new();
            let sub_len = 24.max(block.prefix().len());
            for sub in block.prefix().subnets(sub_len) {
                for (dll, set) in cycles_through(sub) {
                    ids.entry(dll).or_default().extend(set);
                }
            }
            let unique: u64 = ids
                .iter()
                .flat_map(|(dll, set)| {
                    set.iter()
                        .map(|id| pop.get(&(*dll, *id)).copied().unwrap_or(0))
                })
                .sum();
            (block.label().to_owned(), unique)
        })
        .collect()
}

/// The paper's testable prediction: "we can predict the relative number
/// of Slammer observations at different addresses based on the length of
/// the PRNG cycles that traverse each address". Per block: the fraction
/// of random seeds whose cycle ever enters the block, averaged over the
/// three DLL variants.
// hotspots-lint: certifies(panic-free) reason="slammer maps have fixed points and every member is a valid state"
pub fn predicted_observation_fraction(blocks: &[AddressBlock]) -> Vec<(String, f64)> {
    blocks
        .iter()
        .map(|block| {
            let mut fraction = 0.0;
            for dll in SqlsortDll::ALL {
                let map = AffineMap::slammer(dll);
                let mut ids: BTreeMap<CycleId, u64> = BTreeMap::new();
                let sub_len = 24.max(block.prefix().len());
                for sub in block.prefix().subnets(sub_len) {
                    for id in cycles_through(sub).remove(&dll).expect("dll present") {
                        if let std::collections::btree_map::Entry::Vacant(e) = ids.entry(id) {
                            let c = map.fixed_point().expect("fixed point exists");
                            let len = if id.valuation >= 32 {
                                1
                            } else {
                                let u: u32 = if id.sign_class { 3 } else { 1 };
                                map.cycle_length(c.wrapping_add(u << id.valuation))
                                    .expect("member valid")
                            };
                            e.insert(len);
                        }
                    }
                }
                let total: u64 = ids.values().sum();
                fraction += total as f64 / 2f64.powi(32);
            }
            (block.label().to_owned(), fraction / 3.0)
        })
        .collect()
}

/// Figure 3a/3b: one host's probes, histogrammed per monitored /24 by
/// actually walking its generator `probes` steps.
pub fn host_histogram(
    dll: SqlsortDll,
    seed: u32,
    probes: u64,
    blocks: &[AddressBlock],
) -> CountHistogram<hotspots_ipspace::Bucket24> {
    let index = BlockIndex::new(blocks.iter().map(|b| b.prefix()).collect());
    let mut worm = SlammerScanner::new(dll, seed);
    let mut hist = CountHistogram::new();
    for _ in 0..probes {
        let t = worm.next_target();
        if index.find(t).is_some() {
            hist.record(t.bucket24());
        }
    }
    hist
}

/// Figure 3c: the exact period of every cycle of the Slammer LCG for one
/// increment variant.
// hotspots-lint: certifies(panic-free) reason="slammer maps have fixed points"
pub fn cycle_bands(dll: SqlsortDll) -> Vec<CycleBand> {
    AffineMap::slammer(dll)
        .cycle_structure()
        .expect("slammer maps have fixed points")
}

/// The paper's D/H/I comparison: per block, the total length of all
/// cycles that traverse it, summed over the three DLL variants and
/// normalized by 2^26 (the paper's reporting unit).
// hotspots-lint: certifies(panic-free) reason="slammer maps have fixed points and every member is a valid state"
pub fn block_cycle_length_sums(blocks: &[AddressBlock]) -> Vec<(String, f64)> {
    blocks
        .iter()
        .map(|block| {
            let mut total: u128 = 0;
            for dll in SqlsortDll::ALL {
                let map = AffineMap::slammer(dll);
                // collect distinct cycles through the block via its /24s
                let mut seen: BTreeSet<CycleId> = BTreeSet::new();
                let sub_len = 24.max(block.prefix().len());
                for sub in block.prefix().subnets(sub_len) {
                    for ids in cycles_through(sub).values() {
                        seen.extend(ids.iter().copied());
                    }
                }
                for id in seen {
                    // recover a member to measure the cycle length
                    let c = map.fixed_point().expect("fixed point exists");
                    let len = if id.valuation >= 32 {
                        1
                    } else {
                        let u: u32 = if id.sign_class { 3 } else { 1 };
                        let y = u << id.valuation;

                        map.cycle_length(c.wrapping_add(y)).expect("valid member")
                    };
                    total += u128::from(len);
                }
            }
            (
                block.label().to_owned(),
                total as f64 / f64::from(1u32 << 26),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::totals_by_block;

    fn small_study() -> SlammerStudy {
        SlammerStudy {
            hosts: 8_000,
            rng_seed: 7,
            ..SlammerStudy::default()
        }
    }

    #[test]
    fn cycles_through_sampling_matches_exhaustive_on_slash24() {
        // the /16 sampling shortcut must agree with exhaustive
        // enumeration at /24 granularity
        let p24: Prefix = "131.107.3.0/24".parse().unwrap();
        let exhaustive = cycles_through(p24);
        for dll in SqlsortDll::ALL {
            let map = AffineMap::slammer(dll);
            let direct: BTreeSet<CycleId> = p24
                .iter()
                .map(|ip| map.cycle_id(ip.to_le_state()).unwrap())
                .collect();
            assert_eq!(exhaustive[&dll], direct);
        }
    }

    #[test]
    fn population_mass_is_conserved() {
        let study = small_study();
        let pop = draw_cycle_population(&study);
        let total: u64 = pop.values().sum();
        assert_eq!(total, study.hosts as u64);
    }

    #[test]
    fn h_block_sees_fewer_sources_than_d_and_i() {
        // Figure 2's headline: the H block shows markedly fewer unique
        // Slammer sources than D or I, because fewer long cycles
        // traverse it.
        let rows = sources_by_block(&small_study());
        let totals: std::collections::HashMap<String, u64> =
            totals_by_block(&rows).into_iter().collect();
        // normalize per /24 monitored (blocks differ in size)
        let per24 = |label: &str, slash24s: f64| totals[label] as f64 / slash24s;
        let d = per24("D", 16.0);
        let h = per24("H", 64.0);
        let i = per24("I", 128.0);
        assert!(h < 0.8 * d, "H {h} not clearly below D {d}");
        assert!(h < 0.8 * i, "H {h} not clearly below I {i}");
    }

    #[test]
    fn m_block_is_dark_with_upstream_filter() {
        let rows = sources_by_block(&small_study().with_m_block_filter());
        let m_total: u64 = rows
            .iter()
            .filter(|r| r.block == "M")
            .map(|r| r.unique_sources)
            .sum();
        assert_eq!(m_total, 0, "upstream filter must blank the M block");
        // and without the filter it is not dark
        let rows = sources_by_block(&small_study());
        let m_total: u64 = rows
            .iter()
            .filter(|r| r.block == "M")
            .map(|r| r.unique_sources)
            .sum();
        assert!(m_total > 0);
    }

    #[test]
    fn host_histogram_short_cycle_hammered() {
        // A host seeded on a period-4 cycle hits at most 4 addresses.
        let map = AffineMap::slammer(SqlsortDll::Gold);
        let c = map.fixed_point().unwrap();
        let seed = c.wrapping_add(1 << 28);
        // monitor the whole space the cycle lives in: build blocks from
        // the 4 targets
        let mut worm = SlammerScanner::new(SqlsortDll::Gold, seed);
        let targets: BTreeSet<Ip> = (0..8).map(|_| worm.next_target()).collect();
        let blocks: Vec<AddressBlock> = targets
            .iter()
            .map(|t| Prefix::containing(*t, 24))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .enumerate()
            .map(|(i, p)| AddressBlock::new(format!("S{i}"), p))
            .collect();
        let hist = host_histogram(SqlsortDll::Gold, seed, 1000, &blocks);
        assert_eq!(hist.total(), 1000, "every probe hits the monitored set");
        assert!(hist.distinct() <= 4);
    }

    #[test]
    fn cycle_bands_match_structure() {
        let bands = cycle_bands(SqlsortDll::Sp2);
        let cycles: u64 = bands.iter().map(|b| b.num_cycles).sum();
        assert_eq!(cycles, 64);
    }

    #[test]
    fn block_cycle_sums_explain_h_deficit() {
        let blocks: Vec<AddressBlock> = ims_deployment()
            .into_iter()
            .filter(|b| ["D", "H", "I"].contains(&b.label()))
            .collect();
        let sums: std::collections::HashMap<String, f64> =
            block_cycle_length_sums(&blocks).into_iter().collect();
        assert!(
            sums["H"] < sums["D"],
            "H sum {} not below D sum {}",
            sums["H"],
            sums["D"]
        );
        assert!(sums["H"] < sums["I"]);
    }

    #[test]
    fn prediction_matches_measurement() {
        // The paper's cross-check, quantified: predicted per-block
        // observation fractions must rank-correlate with the measured
        // unique-source counts.
        let blocks: Vec<AddressBlock> = ims_deployment()
            .into_iter()
            .filter(|b| b.label() != "M" && b.label() != "Z") // M filtered; Z /16-granular
            .collect();
        let study = small_study();
        let measured: Vec<f64> = unique_sources_per_block(&study, &blocks)
            .into_iter()
            .map(|(_, v)| v as f64)
            .collect();
        let predicted: Vec<f64> = predicted_observation_fraction(&blocks)
            .into_iter()
            .map(|(_, v)| v * study.hosts as f64)
            .collect();
        let rho = hotspots_stats::spearman(&measured, &predicted).expect("correlation defined");
        assert!(rho > 0.8, "prediction/measurement rank correlation {rho}");
        // and the absolute counts agree within sampling noise
        for (m, p) in measured.iter().zip(&predicted) {
            assert!(
                (m - p).abs() / p.max(1.0) < 0.15,
                "measured {m} vs predicted {p}"
            );
        }
    }

    #[test]
    fn closed_form_agrees_with_probe_walk() {
        // The figure pipeline claims: host observed at a bucket ⇔ its
        // cycle passes through the bucket. Validate by walking an entire
        // (medium) cycle and comparing the buckets actually hit with the
        // closed-form traversal sets.
        let blocks = ims_deployment();
        // find a (dll, monitored /24) pair on a walkable (≤ 2^23) cycle
        // and seed the host right on it
        let (dll, seed) = SqlsortDll::ALL
            .into_iter()
            .find_map(|dll| {
                let map = AffineMap::slammer(dll);
                blocks
                    .iter()
                    .flat_map(|b| b.prefix().subnets(24.max(b.prefix().len())))
                    .map(|sub| sub.base().to_le_state())
                    .find(|&state| map.cycle_length(state).unwrap() <= 1 << 23)
                    .map(|state| (dll, state))
            })
            .expect("some monitored bucket lies on a walkable cycle");
        let map = AffineMap::slammer(dll);
        let cycle_len = map.cycle_length(seed).unwrap();
        let host_id = map.cycle_id(seed).unwrap();
        let index = BlockIndex::new(blocks.iter().map(|b| b.prefix()).collect());
        let mut hit_buckets: BTreeSet<Prefix> = BTreeSet::new();
        let mut worm = SlammerScanner::new(dll, seed);
        for _ in 0..cycle_len {
            let t = worm.next_target();
            if index.find(t).is_some() {
                hit_buckets.insert(Prefix::containing(t, 24));
            }
        }
        // closed form: buckets whose traversal set contains this cycle
        let mut predicted: BTreeSet<Prefix> = BTreeSet::new();
        for block in &blocks {
            let sub_len = 24.max(block.prefix().len());
            for sub in block.prefix().subnets(sub_len) {
                if cycles_through(sub)[&dll].contains(&host_id) {
                    for p24 in sub.subnets(24.max(sub.len())) {
                        predicted.insert(Prefix::containing(p24.base(), 24));
                    }
                }
            }
        }
        assert_eq!(
            hit_buckets, predicted,
            "probe walk and closed form disagree on visited /24s"
        );
        assert!(
            !hit_buckets.is_empty(),
            "degenerate test: cycle misses telescope"
        );
    }

    #[test]
    fn study_is_deterministic() {
        let a = sources_by_block(&small_study());
        let b = sources_by_block(&small_study());
        assert_eq!(a, b);
    }
}
