//! Table 2: enterprise egress filtering hides infections.

use hotspots_ipspace::{ims_deployment, Ip};
use hotspots_netmodel::{
    Delivery, DeliveryLedger, Environment, Locus, OrgKind, OrgRegistry, Service,
};
use hotspots_prng::entropy::{HardwareGeneration, SeedModel};
use hotspots_prng::{SplitMix, SqlsortDll};
use hotspots_targeting::{BlasterScanner, CodeRed2Scanner, SlammerScanner, TargetGenerator};
use hotspots_telescope::Observatory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::seed_inference::scan_covers;

/// Configuration for the Table 2 study.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FilteringStudy {
    /// Internally infected hosts per enterprise (the paper's premise:
    /// large networks inevitably harbor infections).
    pub infected_per_enterprise: usize,
    /// Infected hosts per broadband ISP.
    pub infected_per_isp: usize,
    /// Probes per host for the random-scanning worms (CRII, Slammer).
    pub probes_per_host: u64,
    /// Observation window for the sequential worm (Blaster), in covered
    /// addresses.
    pub blaster_scan_len: u64,
    /// Master seed.
    pub rng_seed: u64,
}

impl Default for FilteringStudy {
    fn default() -> FilteringStudy {
        FilteringStudy {
            infected_per_enterprise: 800,
            infected_per_isp: 20_000,
            probes_per_host: 12_000,
            // a month at Blaster's ~11 probes/s
            blaster_scan_len: (30.0 * 24.0 * 3600.0 * 11.0) as u64,
            rng_seed: 0x7ab1e2,
        }
    }
}

/// One Table 2 row: an organization and how many of its infected hosts
/// each worm *exposed* to the telescope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    /// Organization name.
    pub org: String,
    /// Organization kind.
    pub kind: OrgKind,
    /// Addresses allocated to the organization.
    pub total_ips: u64,
    /// Infected hosts planted inside the organization.
    pub infected_inside: u64,
    /// Unique CodeRedII sources observed at the IMS from this org.
    pub crii_observed: u64,
    /// Unique Slammer sources observed.
    pub slammer_observed: u64,
    /// Unique Blaster sources observed.
    pub blaster_observed: u64,
}

/// Runs the study over the synthetic Table 2 registry: plants infected
/// hosts inside each organization, lets each worm scan through the
/// environment (enterprise egress filters active), and counts the unique
/// sources the IMS observatory attributes to each organization.
pub fn table2(study: &FilteringStudy) -> Vec<Table2Row> {
    table2_with_accounting(study).0
}

/// [`table2`], also returning the verdict ledger over every routed
/// probe (the CRII and Slammer probe streams; Blaster coverage is
/// closed-form and routes nothing).
pub fn table2_with_accounting(study: &FilteringStudy) -> (Vec<Table2Row>, DeliveryLedger) {
    let mut ledger = DeliveryLedger::new();
    let registry = OrgRegistry::synthetic_table2();
    let mut env = Environment::new();
    for rule in registry.egress_rules().rules() {
        env.filters_mut().push(*rule);
    }
    let blocks = ims_deployment();
    let mut rng = StdRng::seed_from_u64(study.rng_seed);
    let mut mix = SplitMix::new(study.rng_seed ^ 0x0b5e);

    let mut rows = Vec::new();
    for org in registry.orgs() {
        let infected = match org.kind() {
            OrgKind::Enterprise => study.infected_per_enterprise,
            _ => study.infected_per_isp,
        };
        // plant infected hosts uniformly inside the allocation
        let mut hosts: Vec<Ip> = Vec::with_capacity(infected);
        let prefixes = org.prefixes();
        let total: u64 = prefixes.iter().map(|p| p.size()).sum();
        for _ in 0..infected {
            let mut slot = rng.gen_range(0..total);
            let ip = prefixes
                .iter()
                .find_map(|p| {
                    if slot < p.size() {
                        Some(p.nth(slot))
                    } else {
                        slot -= p.size();
                        None
                    }
                })
                .expect("slot within total"); // hotspots-lint: allow(panic-path) reason="slot within total"
            hosts.push(ip);
        }

        // CodeRedII and Slammer: probe-driven observation.
        let mut crii_obs = Observatory::new(blocks.clone());
        let mut slam_obs = Observatory::new(blocks.clone());
        for &src in &hosts {
            let locus = Locus::Public(src);
            let mut crii = CodeRed2Scanner::new(src, SplitMix::new(mix.next_u64()));
            let mut slam = SlammerScanner::new(
                SqlsortDll::ALL[(mix.next_u64() % 3) as usize],
                mix.next_u64() as u32,
            );
            for _ in 0..study.probes_per_host {
                let crii_verdict = env.route(
                    locus,
                    crii.next_target(),
                    Service::CODERED_HTTP,
                    0.0,
                    &mut rng,
                );
                ledger.record(crii_verdict);
                if let Delivery::Public(dst) = crii_verdict {
                    crii_obs.observe(0.0, src, dst);
                }
                let slam_verdict = env.route(
                    locus,
                    slam.next_target(),
                    Service::SLAMMER_SQL,
                    0.0,
                    &mut rng,
                );
                ledger.record(slam_verdict);
                if let Delivery::Public(dst) = slam_verdict {
                    slam_obs.observe(0.0, src, dst);
                }
            }
        }

        // Blaster: closed-form interval coverage (month-long window),
        // gated on the same egress policy.
        let model = SeedModel::blaster_population(HardwareGeneration::PentiumIii);
        let blaster_observed = hosts
            .iter()
            .filter(|&&src| {
                let egress_ok = env
                    .filters()
                    .check(src, Ip::from_octets(198, 51, 100, 1), Service::BLASTER_RPC)
                    .is_none();
                if !egress_ok {
                    return false;
                }
                let tick = model.sample_seed(&mut rng);
                let start = BlasterScanner::start_for_seed(src, tick);
                blocks
                    .iter()
                    .any(|b| scan_covers(start, study.blaster_scan_len, b.prefix()))
            })
            .count() as u64;

        let count_org_sources = |obs: &Observatory| -> u64 {
            let mut seen = std::collections::HashSet::new();
            for &src in &hosts {
                if obs.iter().any(|(_, log)| log.saw_source(src)) {
                    seen.insert(src);
                }
            }
            seen.len() as u64
        };

        rows.push(Table2Row {
            org: org.name().to_owned(),
            kind: org.kind(),
            total_ips: org.address_count(),
            infected_inside: infected as u64,
            crii_observed: count_org_sources(&crii_obs),
            slammer_observed: count_org_sources(&slam_obs),
            blaster_observed,
        });
    }
    (rows, ledger)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_study() -> FilteringStudy {
        FilteringStudy {
            infected_per_enterprise: 60,
            infected_per_isp: 300,
            probes_per_host: 3_000,
            blaster_scan_len: (30.0 * 24.0 * 3600.0 * 11.0) as u64,
            rng_seed: 3,
        }
    }

    #[test]
    fn enterprises_invisible_isps_expose_thousands() {
        let rows = table2(&small_study());
        assert_eq!(rows.len(), 6);
        for row in &rows {
            match row.kind {
                OrgKind::Enterprise => {
                    assert_eq!(
                        (
                            row.crii_observed,
                            row.slammer_observed,
                            row.blaster_observed
                        ),
                        (0, 0, 0),
                        "egress-filtered {} leaked observations",
                        row.org
                    );
                    assert!(row.infected_inside > 0, "premise: infections exist inside");
                }
                _ => {
                    assert!(
                        row.crii_observed > row.infected_inside / 2,
                        "{}: CRII observed {} of {}",
                        row.org,
                        row.crii_observed,
                        row.infected_inside
                    );
                    assert!(row.slammer_observed > 0, "{}", row.org);
                    assert!(row.blaster_observed > 0, "{}", row.org);
                }
            }
        }
    }

    #[test]
    fn rows_are_deterministic() {
        let a = table2(&small_study());
        let b = table2(&small_study());
        assert_eq!(a, b);
    }

    #[test]
    fn accounting_covers_every_routed_probe() {
        let study = small_study();
        let (rows, ledger) = table2_with_accounting(&study);
        let hosts: u64 = rows.iter().map(|r| r.infected_inside).sum();
        // two probe streams (CRII + Slammer) per planted host
        assert_eq!(ledger.probes(), hosts * study.probes_per_host * 2);
        assert_eq!(ledger.delivered() + ledger.dropped_total(), ledger.probes());
        // the enterprise egress filters must show up as drops
        assert!(ledger.dropped(hotspots_netmodel::DropReason::EgressFiltered) > 0);
    }
}
