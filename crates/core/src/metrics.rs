//! Hotspot quantification over observed count vectors.

use std::fmt;

use hotspots_stats::uniformity::{
    self, chi_square_uniform, gini, kl_divergence_uniform, max_median_ratio, normalized_entropy,
};

/// A bundle of deviation-from-uniform metrics over per-cell observation
/// counts (per destination /24, per sensor block, per organization, …).
///
/// The individual metrics answer different questions:
///
/// * `chi_square_p` — *is* this distribution plausibly uniform? (test)
/// * `gini`, `normalized_entropy` — *how concentrated* is it? (effect size)
/// * `max_median_ratio` — the "orders of magnitude between sensors"
///   headline number.
///
/// # Examples
///
/// ```
/// use hotspots::HotspotReport;
///
/// let report = HotspotReport::from_counts(&[0, 0, 1, 950, 2, 0, 1, 0]);
/// assert!(report.is_hotspot());
/// assert!(report.gini > 0.8);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HotspotReport {
    /// Number of cells.
    pub cells: usize,
    /// Total observations.
    pub total: u64,
    /// Gini coefficient (0 uniform → 1 concentrated).
    pub gini: f64,
    /// Shannon entropy normalized by `log2(cells)` (1 uniform → 0
    /// concentrated).
    pub normalized_entropy: f64,
    /// KL divergence from uniform, in bits.
    pub kl_bits: f64,
    /// Max cell / median cell.
    pub max_median_ratio: f64,
    /// χ² p-value against the uniform null (`None` if untestable —
    /// fewer than 2 cells or zero mass).
    pub chi_square_p: Option<f64>,
}

impl HotspotReport {
    /// Significance level for the default [`HotspotReport::is_hotspot`]
    /// verdict.
    pub const DEFAULT_ALPHA: f64 = 1e-3;

    /// Computes all metrics for a count vector.
    pub fn from_counts(counts: &[u64]) -> HotspotReport {
        HotspotReport {
            cells: counts.len(),
            total: counts.iter().sum(),
            gini: gini(counts),
            normalized_entropy: normalized_entropy(counts),
            kl_bits: kl_divergence_uniform(counts),
            max_median_ratio: max_median_ratio(counts),
            chi_square_p: chi_square_uniform(counts).map(|t| t.p_value),
        }
    }

    /// Computes the metrics for cells of *unequal size*: cell `i` covers
    /// `weights[i]` addresses, and the uniform null expects mass
    /// proportional to the weight. Use this when mixing /16 rows with /24
    /// rows (the Z/8 block next to the small IMS blocks).
    ///
    /// `normalized_entropy` is reported as `H(p)/H(q)` where `q` is the
    /// weight-proportional reference (1.0 at perfect proportionality),
    /// and `gini`/`max_median_ratio` operate on per-address *rates*.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any weight is non-positive.
    pub fn from_weighted_counts(counts: &[u64], weights: &[f64]) -> HotspotReport {
        assert_eq!(
            counts.len(),
            weights.len(),
            "counts/weights length mismatch"
        );
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let total: u64 = counts.iter().sum();
        let weight_sum: f64 = weights.iter().sum();
        let rates: Vec<f64> = counts
            .iter()
            .zip(weights)
            .map(|(&c, &w)| c as f64 / w)
            .collect();
        // entropies of observed vs reference distribution
        let h_p: f64 = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total.max(1) as f64;
                -p * p.log2()
            })
            .sum();
        let h_q: f64 = weights
            .iter()
            .map(|&w| {
                let q = w / weight_sum;
                -q * q.log2()
            })
            .sum();
        let kl_bits: f64 = counts
            .iter()
            .zip(weights)
            .filter(|(&c, _)| c > 0)
            .map(|(&c, &w)| {
                let p = c as f64 / total.max(1) as f64;
                let q = w / weight_sum;
                p * (p / q).log2()
            })
            .sum();
        let mut sorted_rates = rates.clone();
        sorted_rates.sort_by(f64::total_cmp);
        let median_rate = sorted_rates[sorted_rates.len() / 2];
        let max_rate = *sorted_rates.last().expect("non-empty by weight assert"); // hotspots-lint: allow(panic-path) reason="the weight assert above guarantees rates is non-empty"
        HotspotReport {
            cells: counts.len(),
            total,
            gini: uniformity::gini_weighted(&rates, weights),
            normalized_entropy: if h_q > 0.0 { (h_p / h_q).min(1.0) } else { 0.0 },
            kl_bits,
            max_median_ratio: if median_rate > 0.0 {
                max_rate / median_rate
            } else if max_rate > 0.0 {
                f64::INFINITY
            } else {
                1.0
            },
            chi_square_p: uniformity::chi_square_weighted(counts, weights).map(|t| t.p_value),
        }
    }

    /// The default verdict: the χ² test rejects uniformity at
    /// [`Self::DEFAULT_ALPHA`].
    pub fn is_hotspot(&self) -> bool {
        self.is_hotspot_at(Self::DEFAULT_ALPHA)
    }

    /// Verdict at a chosen significance level.
    pub fn is_hotspot_at(&self, alpha: f64) -> bool {
        self.chi_square_p.is_some_and(|p| p < alpha)
    }

    /// The raw χ² statistic (recomputed), exposed for tables.
    pub fn chi_square_statistic(counts: &[u64]) -> Option<f64> {
        uniformity::chi_square_uniform(counts).map(|t| t.statistic)
    }
}

impl fmt::Display for HotspotReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cells={} total={} gini={:.3} H/Hmax={:.3} KL={:.3}b max/med={:.1} p={}",
            self.cells,
            self.total,
            self.gini,
            self.normalized_entropy,
            self.kl_bits,
            self.max_median_ratio,
            self.chi_square_p
                .map_or_else(|| "n/a".to_owned(), |p| format!("{p:.2e}")),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_counts_are_not_hotspots() {
        let r = HotspotReport::from_counts(&[100; 64]);
        assert!(!r.is_hotspot());
        assert_eq!(r.gini, 0.0);
        assert!((r.normalized_entropy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_spike_is_a_hotspot() {
        let mut v = vec![10u64; 64];
        v[7] = 2000;
        let r = HotspotReport::from_counts(&v);
        assert!(r.is_hotspot());
        assert!(r.max_median_ratio == 200.0);
    }

    #[test]
    fn untestable_inputs_are_not_hotspots() {
        assert!(!HotspotReport::from_counts(&[]).is_hotspot());
        assert!(!HotspotReport::from_counts(&[5]).is_hotspot());
        assert!(!HotspotReport::from_counts(&[0, 0, 0]).is_hotspot());
    }

    #[test]
    fn weighted_report_proportional_is_not_hotspot() {
        // a /16 cell next to 4 /24 cells, mass proportional to size
        let weights = [65536.0, 256.0, 256.0, 256.0, 256.0];
        let counts = [6554u64, 26, 25, 26, 25];
        let r = HotspotReport::from_weighted_counts(&counts, &weights);
        assert!(!r.is_hotspot(), "{r}");
        assert!(r.gini < 0.1, "{r}");
    }

    #[test]
    fn weighted_report_rate_spike_is_hotspot() {
        let weights = [65536.0, 256.0, 256.0, 256.0, 256.0];
        let counts = [655u64, 26, 2500, 26, 25]; // tiny cell, huge rate
        let r = HotspotReport::from_weighted_counts(&counts, &weights);
        assert!(r.is_hotspot(), "{r}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_report_rejects_zero_weight() {
        let _ = HotspotReport::from_weighted_counts(&[1, 2], &[1.0, 0.0]);
    }

    #[test]
    fn display_mentions_every_metric() {
        let s = HotspotReport::from_counts(&[1, 2, 3]).to_string();
        for key in ["gini", "KL", "max/med", "p="] {
            assert!(s.contains(key), "{s} missing {key}");
        }
    }

    proptest! {
        #[test]
        fn metrics_are_finite_or_expected_infinity(v in proptest::collection::vec(0u64..10_000, 0..100)) {
            let r = HotspotReport::from_counts(&v);
            prop_assert!(r.gini.is_finite());
            prop_assert!(r.normalized_entropy.is_finite());
            prop_assert!(r.kl_bits.is_finite());
            // max/median may legitimately be +inf when the median is 0
            prop_assert!(!r.max_median_ratio.is_nan());
        }
    }
}
