//! Quantifying the detection gap: alert curves vs infection curves.
//!
//! Section 5's argument is a race: how many sensors have alerted by the
//! time a given fraction of the vulnerable population is infected? This
//! module turns an (infection curve, alert curve) pair into the numbers
//! the paper quotes — "when more than 90% of the vulnerable population
//! has been infected, only slightly more than 20% of the detectors have
//! alerted".

use hotspots_stats::TimeSeries;
use hotspots_telescope::QuorumPolicy;

/// The joined view of one outbreak's infection and alerting dynamics.
///
/// # Examples
///
/// ```
/// use hotspots::detection_gap::DetectionGap;
/// use hotspots_stats::TimeSeries;
///
/// let mut infection = TimeSeries::new("infected");
/// let mut alerts = TimeSeries::new("alerts");
/// for i in 0..=10 {
///     let t = f64::from(i) * 10.0;
///     infection.push(t, f64::from(i) / 10.0);
///     alerts.push(t, f64::from(i) / 50.0); // alerts lag 5×
/// }
/// let gap = DetectionGap::new(infection, alerts);
/// assert_eq!(gap.alerted_when_infected(0.9), Some(0.18));
/// ```
#[derive(Debug, Clone)]
pub struct DetectionGap {
    infection: TimeSeries,
    alerts: TimeSeries,
}

impl DetectionGap {
    /// Joins an infection curve (fraction infected vs time) with an alert
    /// curve (fraction of sensors alerted vs time).
    pub fn new(infection: TimeSeries, alerts: TimeSeries) -> DetectionGap {
        DetectionGap { infection, alerts }
    }

    /// The infection curve.
    pub fn infection(&self) -> &TimeSeries {
        &self.infection
    }

    /// The alert curve.
    pub fn alerts(&self) -> &TimeSeries {
        &self.alerts
    }

    /// Fraction of sensors alerted at the moment `infected_fraction` of
    /// the population was infected (`None` if the outbreak never got
    /// there).
    pub fn alerted_when_infected(&self, infected_fraction: f64) -> Option<f64> {
        let t = self.infection.time_to_reach(infected_fraction)?;
        Some(self.alerts.value_at(t))
    }

    /// Fraction of the population already infected when the quorum policy
    /// first fired (`None` if it never fired — the paper's headline
    /// failure mode).
    pub fn infected_at_quorum(&self, policy: QuorumPolicy) -> Option<f64> {
        let t = self.alerts.time_to_reach(policy.quorum)?;
        Some(self.infection.value_at(t))
    }

    /// The alert lag: how long after `fraction` of the population was
    /// infected did the same fraction of sensors alert? `None` if either
    /// side never reached it; negative values mean detection *led*
    /// infection (the hotspot-exploiting placement of Figure 5c).
    pub fn lag_at_fraction(&self, fraction: f64) -> Option<f64> {
        let infected_t = self.infection.time_to_reach(fraction)?;
        let alerted_t = self.alerts.time_to_reach(fraction)?;
        Some(alerted_t - infected_t)
    }

    /// One-line verdict for experiment output.
    pub fn describe(&self, quorum: QuorumPolicy) -> String {
        match self.infected_at_quorum(quorum) {
            None => format!(
                "quorum {}% NEVER fired (final alert fraction {:.1}%)",
                quorum.quorum * 100.0,
                self.alerts.last_value().unwrap_or(0.0) * 100.0
            ),
            Some(infected) => format!(
                "quorum {}% fired with {:.1}% of the population already infected",
                quorum.quorum * 100.0,
                infected * 100.0
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lagging_gap() -> DetectionGap {
        let mut infection = TimeSeries::new("i");
        let mut alerts = TimeSeries::new("a");
        for i in 0..=100 {
            let t = f64::from(i);
            infection.push(t, f64::from(i) / 100.0);
            // alerts reach only 25% and late
            alerts.push(t, (f64::from(i) / 400.0).min(0.25));
        }
        DetectionGap::new(infection, alerts)
    }

    #[test]
    fn alerted_when_infected_reads_the_race() {
        let gap = lagging_gap();
        let at90 = gap.alerted_when_infected(0.9).unwrap();
        assert!((at90 - 0.225).abs() < 0.01, "{at90}");
        assert!(gap.alerted_when_infected(2.0).is_none());
    }

    #[test]
    fn quorum_never_fires_when_alerts_cap_below_it() {
        let gap = lagging_gap();
        let policy = QuorumPolicy::new(0.5).unwrap();
        assert_eq!(gap.infected_at_quorum(policy), None);
        assert!(gap.describe(policy).contains("NEVER"));
    }

    #[test]
    fn quorum_fires_late_when_reachable() {
        let gap = lagging_gap();
        let policy = QuorumPolicy::new(0.2).unwrap();
        let infected = gap.infected_at_quorum(policy).unwrap();
        assert!(infected >= 0.79, "quorum fired 'early' at {infected}");
        assert!(gap.describe(policy).contains("already infected"));
    }

    #[test]
    fn lag_sign_distinguishes_leading_detection() {
        // detection that races ahead of infection has negative lag
        let mut infection = TimeSeries::new("i");
        let mut alerts = TimeSeries::new("a");
        for i in 0..=100 {
            let t = f64::from(i);
            infection.push(t, f64::from(i) / 100.0);
            alerts.push(t, (f64::from(i) / 25.0).min(1.0));
        }
        let gap = DetectionGap::new(infection, alerts);
        assert!(gap.lag_at_fraction(0.5).unwrap() < 0.0);
        assert!(lagging_gap().lag_at_fraction(0.2).unwrap() > 0.0);
    }
}
