//! The analytic epidemic baseline (validation of the probe-level engine).
//!
//! The paper builds on the classical "simple epidemic model" in which a
//! uniform-scanning worm's infected count follows the logistic equation
//! `dI/dt = β·I·(N − I)` with contact rate `β = scan_rate / Ω` over a
//! scanned space of `Ω` addresses. Our simulator works at per-probe
//! fidelity instead — so, as an engine-validation ablation, this module
//! provides the closed-form solution and the comparison harness: on a
//! uniform worm the two must agree (see the integration tests and the
//! `ablations` bench).
//!
//! # Examples
//!
//! ```
//! use hotspots::epidemic::SiModel;
//!
//! let model = SiModel::new(10_000.0, 10.0, (1u64 << 16) as f64, 25.0).unwrap();
//! let half = model.time_to_fraction(0.5).unwrap();
//! assert!((model.infected_at(half) / 10_000.0 - 0.5).abs() < 1e-9);
//! ```

/// The susceptible–infected logistic model of a uniform-scanning worm.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SiModel {
    population: f64,
    scan_rate: f64,
    address_space: f64,
    seeds: f64,
}

impl SiModel {
    /// Creates a model of `population` vulnerable hosts inside a scanned
    /// space of `address_space` addresses, with `seeds` initially
    /// infected hosts each probing `scan_rate` addresses per second.
    ///
    /// Returns `None` unless all parameters are positive, finite, and
    /// `seeds <= population <= address_space`.
    pub fn new(population: f64, scan_rate: f64, address_space: f64, seeds: f64) -> Option<SiModel> {
        let ok = [population, scan_rate, address_space, seeds]
            .iter()
            .all(|v| v.is_finite() && *v > 0.0)
            && seeds <= population
            && population <= address_space;
        ok.then_some(SiModel {
            population,
            scan_rate,
            address_space,
            seeds,
        })
    }

    /// The per-pair contact rate `β = scan_rate / Ω`.
    pub fn beta(&self) -> f64 {
        self.scan_rate / self.address_space
    }

    /// Expected infected count at time `t` (seconds):
    /// `I(t) = N / (1 + (N/I₀ − 1)·e^(−βNt))`.
    pub fn infected_at(&self, t: f64) -> f64 {
        let n = self.population;
        let ratio = n / self.seeds - 1.0;
        n / (1.0 + ratio * (-self.beta() * n * t).exp())
    }

    /// Expected infected fraction at time `t`.
    pub fn fraction_at(&self, t: f64) -> f64 {
        self.infected_at(t) / self.population
    }

    /// Time until the infected fraction reaches `f`
    /// (`seeds/N < f < 1`); `None` outside that range.
    pub fn time_to_fraction(&self, f: f64) -> Option<f64> {
        let n = self.population;
        if !(self.seeds / n..1.0).contains(&f) || f <= 0.0 {
            return None;
        }
        // invert the logistic
        let ratio = n / self.seeds - 1.0;
        let inner = (1.0 / f - 1.0) / ratio;
        Some(-inner.ln() / (self.beta() * n))
    }

    /// The classic epidemic doubling time in the early (exponential)
    /// phase, `ln 2 / (βN)`.
    pub fn early_doubling_time(&self) -> f64 {
        std::f64::consts::LN_2 / (self.beta() * self.population)
    }
}

/// Maximum relative error between a simulated infection curve and the
/// analytic model, evaluated at the model's 10%..90% fraction times.
///
/// Returns `None` if the simulation never reaches 10%.
pub fn relative_error(model: &SiModel, curve: &hotspots_stats::TimeSeries) -> Option<f64> {
    let mut worst: f64 = 0.0;
    for pct in [0.1, 0.25, 0.5, 0.75, 0.9] {
        let t = model.time_to_fraction(pct)?;
        let simulated = curve.value_at(t);
        if simulated <= 0.0 {
            return None;
        }
        worst = worst.max((simulated - pct).abs() / pct);
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SiModel {
        SiModel::new(134_586.0, 10.0, 2f64.powi(32), 25.0).unwrap()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(SiModel::new(0.0, 1.0, 10.0, 1.0).is_none());
        assert!(SiModel::new(10.0, 1.0, 5.0, 1.0).is_none(), "N > Ω");
        assert!(SiModel::new(10.0, 1.0, 20.0, 11.0).is_none(), "I0 > N");
        assert!(SiModel::new(f64::NAN, 1.0, 10.0, 1.0).is_none());
    }

    #[test]
    fn starts_at_seeds_and_saturates() {
        let m = model();
        assert!((m.infected_at(0.0) - 25.0).abs() < 1e-9);
        assert!((m.fraction_at(1e9) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monotone_increasing() {
        let m = model();
        let mut prev = 0.0;
        for i in 0..100 {
            let v = m.infected_at(f64::from(i) * 500.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn time_to_fraction_inverts_fraction_at() {
        let m = model();
        for f in [0.01, 0.1, 0.5, 0.9, 0.99] {
            let t = m.time_to_fraction(f).unwrap();
            assert!((m.fraction_at(t) - f).abs() < 1e-9, "f={f}");
        }
        assert!(m.time_to_fraction(1.0).is_none());
        assert!(m.time_to_fraction(1e-9).is_none(), "below seed fraction");
    }

    #[test]
    fn paper_scale_uniform_worm_is_slow() {
        // sanity: a 2^32-space uniform worm with the paper's parameters
        // needs hours to take off — which is why the paper's simulated
        // threats (hit-lists, local preference) matter.
        let m = model();
        let t50 = m.time_to_fraction(0.5).unwrap();
        assert!(t50 > 3600.0, "t50={t50}");
    }

    #[test]
    fn doubling_time_matches_early_growth() {
        let m = model();
        let d = m.early_doubling_time();
        let early = m.infected_at(3.0 * d) / m.infected_at(2.0 * d);
        assert!((early - 2.0).abs() < 0.01, "growth factor {early}");
    }

    #[test]
    fn relative_error_of_the_model_itself_is_zero() {
        let m = SiModel::new(1000.0, 10.0, 65536.0, 10.0).unwrap();
        let mut curve = hotspots_stats::TimeSeries::new("analytic");
        for i in 0..=2000 {
            let t = f64::from(i) * 0.1;
            curve.push(t, m.fraction_at(t));
        }
        let err = relative_error(&m, &curve).unwrap();
        assert!(err < 0.02, "err={err}");
    }
}
