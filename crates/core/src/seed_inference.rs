//! Blaster seed forensics: from observed hotspots back to boot times.
//!
//! Section 4.2.2 of the paper inverts the Blaster pipeline: take the /24
//! ranges that observed the most Blaster sources, enumerate
//! `GetTickCount()` seeds from 1,000 to 10,000,000 (boot times of 1 s to
//! 2.8 h), and map each seed to its scanning start address. Seeds whose
//! start lands just below a hot sensor are the *probable* seeds; the
//! paper found they imply boot times of about 1–20 minutes, centered on
//! 4–5 minutes, while cold /24s map back to implausible boot times of
//! hours to days.

use hotspots_ipspace::{Ip, Prefix};
use hotspots_prng::entropy::TickCount;
use hotspots_targeting::BlasterScanner;

/// The tick range the paper searched: 1,000 ms to 10,000,000 ms
/// (1 second to ≈ 2.8 hours of uptime).
pub const PAPER_TICK_RANGE: std::ops::Range<u32> = 1_000..10_000_000;

/// Whether a sequential scan starting at `start` and covering `len`
/// addresses (with wraparound) intersects `block`.
///
/// # Examples
///
/// ```
/// use hotspots::seed_inference::scan_covers;
/// use hotspots_ipspace::Ip;
///
/// let block = "10.0.1.0/24".parse().unwrap();
/// assert!(scan_covers(Ip::from_octets(10, 0, 0, 200), 200, block));
/// assert!(!scan_covers(Ip::from_octets(10, 0, 0, 200), 10, block));
/// ```
pub fn scan_covers(start: Ip, len: u64, block: Prefix) -> bool {
    if len == 0 {
        return false;
    }
    if len >= 1 << 32 {
        return true;
    }
    let s = u64::from(start.value());
    let e = s + len - 1; // inclusive end, may exceed 2^32 (wraparound)
    let b0 = u64::from(block.base().value());
    let b1 = u64::from(block.last_ip().value());
    // unwrapped overlap, or overlap after wrapping the scan tail
    let overlaps = |lo: u64, hi: u64| lo <= b1 && b0 <= hi;
    if e < 1 << 32 {
        overlaps(s, e)
    } else {
        overlaps(s, (1 << 32) - 1) || overlaps(0, e - (1 << 32))
    }
}

/// One inferred seed: the tick count, the start address it implies, and
/// the boot time it corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InferredSeed {
    /// The candidate `GetTickCount()` value.
    pub tick: u32,
    /// The scanning start address Blaster derives from it.
    pub start: Ip,
}

impl InferredSeed {
    /// The boot/uptime duration the tick count corresponds to.
    pub fn boot_time(&self) -> TickCount {
        TickCount::from_millis(self.tick)
    }

    /// The paper's plausibility judgment: launch delays between 30 s
    /// (a fast reboot) and 30 min are consistent with real machine
    /// behavior; hours-to-days uptimes make the seed an unlikely
    /// explanation.
    pub fn is_plausible_boot(&self) -> bool {
        let secs = self.boot_time().as_secs_f64();
        (25.0..=1_800.0).contains(&secs)
    }
}

/// Searches `ticks` for seeds whose Blaster scan, starting from the seed's
/// derived start address and covering `scan_len` addresses, would reach
/// `block`. This is the paper's seed↔hotspot correlation, forward-checked
/// exactly (no sampling): the result is every tick in the range that
/// explains traffic at `block`.
///
/// `source` is the infected host's own address (it matters only for the
/// 40% local branch).
///
/// # Examples
///
/// ```
/// use hotspots::seed_inference::{candidate_seeds, scan_covers};
/// use hotspots_ipspace::Ip;
///
/// let block = "100.0.0.0/24".parse().unwrap();
/// let src = Ip::from_octets(9, 9, 9, 9);
/// let seeds = candidate_seeds(30_000..40_000, src, 1 << 16, block);
/// for s in &seeds {
///     assert!(scan_covers(s.start, 1 << 16, block));
/// }
/// ```
pub fn candidate_seeds(
    ticks: std::ops::Range<u32>,
    source: Ip,
    scan_len: u64,
    block: Prefix,
) -> Vec<InferredSeed> {
    ticks
        .filter_map(|tick| {
            let start = BlasterScanner::start_for_seed(source, tick);
            scan_covers(start, scan_len, block).then_some(InferredSeed { tick, start })
        })
        .collect()
}

/// Summary of a seed-inference run over one hot block: how many candidate
/// seeds exist and what boot times they imply.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedInferenceSummary {
    /// The block whose observations are being explained.
    pub block: Prefix,
    /// Number of candidate seeds found.
    pub candidates: usize,
    /// Median implied boot time (seconds), if any candidates exist.
    pub median_boot_secs: Option<f64>,
    /// Fraction of candidates with plausible boot times.
    pub plausible_fraction: f64,
}

/// Runs [`candidate_seeds`] and summarizes the implied boot times.
pub fn summarize_block(
    ticks: std::ops::Range<u32>,
    source: Ip,
    scan_len: u64,
    block: Prefix,
) -> SeedInferenceSummary {
    let seeds = candidate_seeds(ticks, source, scan_len, block);
    let mut boots: Vec<f64> = seeds.iter().map(|s| s.boot_time().as_secs_f64()).collect();
    boots.sort_by(f64::total_cmp);
    let plausible = seeds.iter().filter(|s| s.is_plausible_boot()).count();
    SeedInferenceSummary {
        block,
        candidates: seeds.len(),
        median_boot_secs: (!boots.is_empty()).then(|| boots[boots.len() / 2]),
        plausible_fraction: if seeds.is_empty() {
            0.0
        } else {
            plausible as f64 / seeds.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SRC: Ip = Ip::from_octets(7, 7, 7, 7);

    #[test]
    fn scan_covers_basic_cases() {
        let block: Prefix = "10.0.1.0/24".parse().unwrap();
        // starts inside the block
        assert!(scan_covers(Ip::from_octets(10, 0, 1, 50), 1, block));
        // ends exactly at the block's first address
        assert!(scan_covers(Ip::from_octets(10, 0, 0, 0), 257, block));
        assert!(!scan_covers(Ip::from_octets(10, 0, 0, 0), 256, block));
        // starts past the block
        assert!(!scan_covers(Ip::from_octets(10, 0, 2, 0), 1000, block));
        // zero-length scans cover nothing
        assert!(!scan_covers(Ip::from_octets(10, 0, 1, 0), 0, block));
    }

    #[test]
    fn scan_covers_wraparound() {
        let low_block: Prefix = "0.0.0.0/24".parse().unwrap();
        let near_top = Ip::new(u32::MAX - 10);
        assert!(scan_covers(near_top, 20, low_block));
        assert!(!scan_covers(near_top, 5, low_block));
        // full-space scans cover everything
        assert!(scan_covers(
            Ip::from_octets(50, 0, 0, 0),
            1 << 32,
            low_block
        ));
    }

    #[test]
    fn candidate_seeds_forward_consistency() {
        // every returned seed must actually produce a covering scan
        let block: Prefix = "61.0.0.0/16".parse().unwrap();
        let seeds = candidate_seeds(1_000..200_000, SRC, 1 << 20, block);
        for s in &seeds {
            assert_eq!(BlasterScanner::start_for_seed(SRC, s.tick), s.start);
            assert!(scan_covers(s.start, 1 << 20, block));
        }
    }

    #[test]
    fn hot_block_has_seeds_cold_block_fewer() {
        // Build ground truth: collect where seeds in the plausible boot
        // band actually start, pick a hot /16 from them, and a /16 no
        // seed reaches. The hot block must yield strictly more
        // candidates.
        let scan_len = 1u64 << 16;
        let mut per16: std::collections::HashMap<u16, u32> = std::collections::HashMap::new();
        for tick in (30_000..90_000u32).step_by(7) {
            let start = BlasterScanner::start_for_seed(SRC, tick);
            let key = (start.value() >> 16) as u16;
            *per16.entry(key).or_insert(0) += 1;
        }
        let (&hot16, _) = per16.iter().max_by_key(|(_, &c)| c).unwrap();
        let hot_block = Prefix::containing(Ip::new(u32::from(hot16) << 16), 16);
        // a /16 just outside any observed start neighborhood
        let cold16 = (0u16..u16::MAX)
            .find(|k| {
                !per16.contains_key(k)
                    && !per16.contains_key(&k.wrapping_sub(1))
                    && !per16.contains_key(&k.wrapping_add(1))
            })
            .unwrap();
        let cold_block = Prefix::containing(Ip::new(u32::from(cold16) << 16), 16);

        let hot = candidate_seeds(30_000..90_000, SRC, scan_len, hot_block);
        let cold = candidate_seeds(30_000..90_000, SRC, scan_len, cold_block);
        assert!(
            hot.len() > cold.len(),
            "hot {} vs cold {}",
            hot.len(),
            cold.len()
        );
        assert!(!hot.is_empty());
    }

    #[test]
    fn plausibility_band_matches_paper() {
        let half_minute = InferredSeed {
            tick: 30_000,
            start: Ip::MIN,
        };
        let five_minutes = InferredSeed {
            tick: 300_000,
            start: Ip::MIN,
        };
        let two_days = InferredSeed {
            tick: 172_800_000,
            start: Ip::MIN,
        };
        assert!(half_minute.is_plausible_boot());
        assert!(five_minutes.is_plausible_boot());
        assert!(!two_days.is_plausible_boot());
    }

    #[test]
    fn summarize_block_aggregates() {
        let block: Prefix = "61.0.0.0/8".parse().unwrap();
        let summary = summarize_block(30_000..60_000, SRC, 1 << 24, block);
        assert_eq!(summary.block, block);
        if summary.candidates > 0 {
            let median = summary.median_boot_secs.unwrap();
            assert!((30.0..=60.0).contains(&median));
            assert!(summary.plausible_fraction > 0.99);
        }
    }

    proptest! {
        #[test]
        fn scan_covers_agrees_with_naive_small(start in any::<u32>(), len in 1u64..512) {
            let block: Prefix = "128.10.4.0/24".parse().unwrap();
            let fast = scan_covers(Ip::new(start), len, block);
            let naive = (0..len).any(|i| block.contains(Ip::new(start.wrapping_add(i as u32))));
            prop_assert_eq!(fast, naive);
        }
    }
}
