//! Why quorum detection misses targeted worms (Figure 5, reduced scale).
//!
//! Runs a hit-list outbreak against a distributed field of threshold
//! sensors and shows the paper's core operational finding: the worm can
//! finish infecting its targets while the overwhelming majority of
//! sensors — and therefore any quorum rule over them — stay silent.
//!
//! Run with: `cargo run --release --example outbreak_detection`

use hotspots::scenarios::detection::{hitlist_runs, nat_run, DetectionStudy, Placement};
use hotspots_telemetry::ReportBuilder;
use hotspots_telescope::QuorumPolicy;

fn main() {
    let study = DetectionStudy {
        population: 20_000,
        slash8s: 30,
        paper_profile: false,
        seeds: 25,
        scan_rate: 10.0,
        alert_threshold: 5,
        max_time: 6_000.0,
        stop_at_fraction: 0.9,
        rng_seed: 5,
    };

    let mut report = ReportBuilder::new("outbreak_detection", "Figure 5 reduced scale");
    report
        .config("population", study.population)
        .config("alert_threshold", study.alert_threshold);

    println!("== Hit-list outbreaks vs distributed detection ==");
    let runs = hitlist_runs(&study, &[Some(10), Some(100), None]);
    for run in &runs {
        hotspots_sim::fold_ledger(&mut report, &run.ledger);
        report
            .add_population(study.population as u64)
            .add_infections(run.infected_hosts)
            .add_sim_seconds(run.sim_seconds);
    }
    println!(
        "{:>10} {:>9} {:>10} {:>12} {:>14}",
        "hit-list", "coverage", "infected", "sensors", "alerted"
    );
    for run in &runs {
        println!(
            "{:>10} {:>8.1}% {:>9.1}% {:>12} {:>8} ({:.1}%)",
            run.list_size,
            100.0 * run.coverage,
            100.0 * run.final_infected,
            run.sensors,
            run.sensors_alerted,
            100.0 * run.sensors_alerted as f64 / run.sensors as f64,
        );
    }
    let quorum = QuorumPolicy::new(0.5).expect("valid quorum");
    for run in &runs {
        let fraction = run.sensors_alerted as f64 / run.sensors as f64;
        if fraction < quorum.quorum {
            println!(
                "  → {}-prefix worm: a 50% quorum detector NEVER fires \
                 (only {:.1}% of sensors alerted)",
                run.list_size,
                100.0 * fraction
            );
        }
    }

    println!("\n== Placement against a NAT-biased worm ==");
    for placement in [
        Placement::Random { sensors: 500 },
        Placement::TopSlash8s {
            sensors: 500,
            k: 20,
        },
        Placement::Inside192,
    ] {
        let run = nat_run(&study, 0.15, placement);
        hotspots_sim::fold_ledger(&mut report, &run.ledger);
        report
            .add_population(study.population as u64)
            .add_infections(run.infected_hosts)
            .add_sim_seconds(run.sim_seconds);
        println!(
            "  {:?}: {} sensors, {:.1}% alerted when 20% of hosts were infected",
            run.placement,
            run.sensors,
            100.0 * run.alerted_at_20pct_infected
        );
    }
    println!("  → knowing the hotspot beats 500 blind sensors with just 255.");
    report.emit();
}
