//! Why quorum detection misses targeted worms (Figure 5, reduced scale).
//!
//! Runs a hit-list outbreak against a distributed field of threshold
//! sensors and shows the paper's core operational finding: the worm can
//! finish infecting its targets while the overwhelming majority of
//! sensors — and therefore any quorum rule over them — stay silent.
//!
//! Both halves are expressed as declarative [`ScenarioSpec`] studies and
//! executed through the same [`run_spec`] path as the `hotspots` CLI, so
//! the exact configuration is printable (`ScenarioSpec::to_toml`) and
//! reproducible from a file.
//!
//! Run with: `cargo run --release --example outbreak_detection`

use hotspots_scenario::spec::{DetectionParams, StudySpec};
use hotspots_scenario::{run_spec, Outcome, RunContext, ScenarioSpec};
use hotspots_telescope::QuorumPolicy;

/// The shared reduced-scale detection study (Figure 5 at 20k hosts).
fn detection() -> DetectionParams {
    DetectionParams {
        population: 20_000,
        slash8s: 30,
        paper_profile: false,
        seeds: 25,
        scan_rate: 10.0,
        alert_threshold: 5,
        max_time: 6_000.0,
        stop_at_fraction: 0.9,
        rng_seed: 5,
    }
}

fn main() {
    let ctx = RunContext::new("outbreak_detection");

    println!("== Hit-list outbreaks vs distributed detection ==");
    let mut spec = ScenarioSpec::named("outbreak-detection-hitlist");
    spec.meta.scenario = Some("Figure 5 reduced scale (hit-list sizes)".to_owned());
    spec.study = Some(StudySpec::HitListInfection {
        detection: detection(),
        sizes: vec![Some(10), Some(100), None],
    });
    let run = run_spec(&spec, &ctx).expect("study spec runs");
    let Outcome::HitListInfection { runs, .. } = &run.outcome else {
        unreachable!("hit-list study");
    };
    println!(
        "{:>10} {:>9} {:>10} {:>12} {:>14}",
        "hit-list", "coverage", "infected", "sensors", "alerted"
    );
    for r in runs {
        println!(
            "{:>10} {:>8.1}% {:>9.1}% {:>12} {:>8} ({:.1}%)",
            r.list_size,
            100.0 * r.coverage,
            100.0 * r.final_infected,
            r.sensors,
            r.sensors_alerted,
            100.0 * r.sensors_alerted as f64 / r.sensors as f64,
        );
    }
    let quorum = QuorumPolicy::new(0.5).expect("valid quorum");
    for r in runs {
        let fraction = r.sensors_alerted as f64 / r.sensors as f64;
        if fraction < quorum.quorum {
            println!(
                "  → {}-prefix worm: a 50% quorum detector NEVER fires \
                 (only {:.1}% of sensors alerted)",
                r.list_size,
                100.0 * fraction
            );
        }
    }
    if let Err(e) = run.emit_report() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }

    println!("\n== Placement against a NAT-biased worm ==");
    let mut spec = ScenarioSpec::named("outbreak-detection-placement");
    spec.meta.scenario = Some("Figure 5 reduced scale (sensor placement)".to_owned());
    spec.study = Some(StudySpec::NatDetection {
        detection: detection(),
        nat_fraction: 0.15,
        sensors: 500,
        top_k_slash8s: 20,
    });
    let run = run_spec(&spec, &ctx).expect("study spec runs");
    let Outcome::NatDetection { runs, .. } = &run.outcome else {
        unreachable!("placement study");
    };
    for r in runs {
        println!(
            "  {:?}: {} sensors, {:.1}% alerted when 20% of hosts were infected",
            r.placement,
            r.sensors,
            100.0 * r.alerted_at_20pct_infected
        );
    }
    println!("  → knowing the hotspot beats 500 blind sensors with just 255.");
    if let Err(e) = run.emit_report() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
