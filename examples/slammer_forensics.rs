//! Slammer forensics: why a broken LCG makes some blocks dark.
//!
//! Walks through the paper's Slammer analysis with the library API:
//! the three flawed increments, the exact 64-cycle decomposition, a
//! short-cycle instance behaving like a targeted DoS, and the
//! cycle-traversal asymmetry between the D, H, and I sensor blocks.
//!
//! Run with: `cargo run --release --example slammer_forensics`

use hotspots::scenarios::slammer;
use hotspots_ipspace::{ims_deployment, Deployment};
use hotspots_prng::cycles::AffineMap;
use hotspots_prng::{SqlsortDll, SLAMMER_SEED_XOR};
use hotspots_targeting::{SlammerScanner, TargetGenerator};

fn main() {
    // cycle arithmetic and closed-form coverage: nothing is routed
    let mut report =
        hotspots_telemetry::ReportBuilder::new("slammer_forensics", "Slammer LCG forensics");
    println!("== The OR-for-XOR bug ==");
    for dll in SqlsortDll::ALL {
        println!(
            "  {dll}: intended b = {SLAMMER_SEED_XOR:#010x}, shipped b = {:#010x}",
            dll.increment()
        );
    }

    println!("\n== Cycle decomposition (Fig 3c) ==");
    let bands = slammer::cycle_bands(SqlsortDll::Gold);
    let total_cycles: u64 = bands.iter().map(|b| b.num_cycles).sum();
    println!("  {total_cycles} cycles total; per valuation band:");
    for band in bands.iter().take(8) {
        println!(
            "    v={:2}: {} cycle(s) of period {}",
            band.valuation, band.num_cycles, band.cycle_length
        );
    }
    println!(
        "    … down to {} period-1 fixed points",
        bands
            .iter()
            .filter(|b| b.cycle_length == 1)
            .map(|b| b.num_cycles)
            .sum::<u64>()
    );

    println!("\n== A short-cycle instance is a targeted DoS ==");
    let map = AffineMap::slammer(SqlsortDll::Gold);
    let fixed = map.fixed_point().expect("4 | b");
    let seed = fixed.wrapping_add(1 << 28); // period-4 cycle
    let mut worm = SlammerScanner::new(SqlsortDll::Gold, seed);
    let targets: std::collections::BTreeSet<_> = (0..1000).map(|_| worm.next_target()).collect();
    println!(
        "  seed {seed:#010x} → {} distinct targets over 1000 probes:",
        targets.len()
    );
    for t in &targets {
        println!("    {t}");
    }

    println!("\n== Block traversal asymmetry (the H deficit) ==");
    let blocks: Vec<_> = ims_deployment()
        .into_iter()
        .filter(|b| ["D", "H", "I"].contains(&b.label()))
        .collect();
    for (label, sum) in slammer::block_cycle_length_sums(&blocks) {
        println!("  block {label}: Σ traversing cycle lengths = {sum:.2} ×2^26");
    }

    println!("\n== Aggregate observation (Fig 2, reduced scale) ==");
    let study = slammer::SlammerStudy {
        hosts: 30_000,
        rng_seed: 1,
        ..slammer::SlammerStudy::default()
    }
    .with_m_block_filter();
    let blocks = ims_deployment();
    let unique = slammer::unique_sources_per_block(&study, &blocks);
    let rows = slammer::sources_by_block_with(&study, &blocks);
    println!(
        "  {:>5} {:>15} {:>22}",
        "block", "unique sources", "mean sources per /24"
    );
    for (label, total) in unique {
        let block = blocks.by_label(&label).expect("label");
        let per_row: Vec<u64> = rows
            .iter()
            .filter(|r| r.block == label)
            .map(|r| r.unique_sources)
            .collect();
        let mean = per_row.iter().sum::<u64>() as f64 / per_row.len() as f64;
        let _ = block;
        println!("  {label:>5} {total:>15} {mean:>22.0}");
    }
    println!("  (M is dark: its upstream filters UDP/1434; H trails D and I per /24)");
    report
        .config("hosts", study.hosts)
        .config("m_block_filter", true)
        .add_population(study.hosts as u64);
    if let Err(e) = report.try_emit() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
