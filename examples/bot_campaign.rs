//! A botnet campaign end-to-end: captured command → drone scanning →
//! what the telescope does (and doesn't) see.
//!
//! The paper's Table 1 commands restrict drones to chosen subnets. This
//! example extracts a command from a noisy IRC capture, runs the campaign
//! over a vulnerable population, and shows the detection consequence: the
//! hit-list confines all probe traffic, so only sensors inside the
//! targeted range ever see anything — the algorithmic hotspot in its
//! most deliberate form.
//!
//! Run with: `cargo run --release --example bot_campaign`

use hotspots_botnet::log_scanner;
use hotspots_ipspace::{Ip, Prefix};
use hotspots_netmodel::Environment;
use hotspots_sim::{BotWorm, Engine, FieldObserver, Population, SimConfig, TelemetryObserver};
use hotspots_telemetry::ReportBuilder;
use hotspots_telescope::DetectorField;

fn main() {
    // started first so its wall clock covers the whole campaign
    let mut report = ReportBuilder::new("bot_campaign", "botnet campaign");

    // 1. "Capture" the controller's channel and extract the command.
    let capture = [
        "PING :irc.backbone.example".to_owned(),
        ":dr0ne7!u@h JOIN ##rbot".to_owned(),
        ":b0ss!u@h PRIVMSG ##rbot :.advscan dcom2 150 3 0 -r -s".to_owned(),
        ":b0ss!u@h PRIVMSG ##rbot :ipscan 20.40.x.x dcom2 -s".to_owned(),
    ];
    let hits = log_scanner::scan_lines(capture);
    println!("extracted {} command(s) from the capture:", hits.len());
    for hit in &hits {
        println!("  line {}: {}", hit.line, hit.command);
    }
    let command = hits
        .last()
        .expect("capture contains commands")
        .command
        .clone();
    println!("\nrunning the campaign for: {command}\n");

    // 2. A vulnerable population: half inside the targeted 20.40/16
    //    (an academic-network-style cluster), half elsewhere.
    let mut addrs: Vec<Ip> = Vec::new();
    for i in 0..1_500u32 {
        addrs.push(Ip::new(0x1428_0000 | (i * 7 % 0x1_0000))); // 20.40.x.x
        addrs.push(Ip::new(0x3700_0000 | (i * 7 % 0x1_0000))); // 55.0.x.x
    }
    addrs.sort_unstable();
    addrs.dedup();

    // 3. Sensors inside and outside the targeted range.
    let sensors: Vec<Prefix> = (0..8u32)
        .map(|i| format!("20.40.{}.0/24", 1 + i * 31).parse().expect("valid"))
        .chain((0..8u32).map(|i| format!("55.0.{}.0/24", 1 + i * 31).parse().expect("valid")))
        .collect();

    let field = DetectorField::new(sensors.clone(), 5);
    // observers compose as tuples: the detector field and the telemetry
    // accounting watch the same probe stream in one pass
    let mut observer = (FieldObserver::new(field), TelemetryObserver::disabled());
    let config = SimConfig {
        scan_rate: 20.0,
        seeds: 10,
        max_time: 3_000.0,
        stop_at_fraction: None,
        ..SimConfig::default()
    };
    let population = addrs.len() as u64;
    let mut engine = Engine::new(
        config,
        Population::from_public(addrs),
        Environment::new(),
        Box::new(BotWorm::new(command.clone())),
    );
    let result = engine.run(&mut observer);
    let (field_observer, telemetry) = observer;
    let field = field_observer.into_field();

    // 4. The asymmetry.
    println!(
        "infected {:.1}% of the population ({} probes sent)",
        100.0 * result.infected_fraction(),
        result.probes_sent
    );
    let mut in_range = 0;
    let mut out_of_range = 0;
    for (i, sensor) in field.blocks().iter().enumerate() {
        let alerted = field.alert_time(i).is_some();
        if sensor.base().octets()[0] == 20 {
            // inside the targeted 20.40/16
            in_range += usize::from(alerted);
        } else {
            out_of_range += usize::from(alerted);
        }
    }
    println!("sensors inside 20.40/16 alerted:  {in_range}/8");
    println!("sensors outside the range alerted: {out_of_range}/8");
    println!(
        "\n→ the hit-list confines every probe: hosts outside the range are never \
         infected and\n  out-of-range sensors never alert — a detection \
         system watching anywhere else\n  concludes nothing is happening."
    );

    report
        .config("command", &command)
        .add_population(population)
        .add_sim_seconds(result.elapsed);
    telemetry.fold_into(&mut report);
    report.emit();
}
