//! A botnet campaign end-to-end: captured command → drone scanning →
//! what the telescope does (and doesn't) see.
//!
//! The paper's Table 1 commands restrict drones to chosen subnets. This
//! example extracts a command from a noisy IRC capture, describes the
//! whole campaign as a declarative [`ScenarioSpec`] — the bot worm, the
//! half-in/half-out population, the sensor field — and runs it through
//! the same [`run_spec`] path as the `hotspots` CLI. The detection
//! consequence: the hit-list confines all probe traffic, so only sensors
//! inside the targeted range ever see anything — the algorithmic hotspot
//! in its most deliberate form.
//!
//! Run with: `cargo run --release --example bot_campaign`

use hotspots_botnet::log_scanner;
use hotspots_ipspace::Ip;
use hotspots_scenario::spec::{PlacementSpec, PopSpec, SimSpec, TelescopeSpec, WormSpec};
use hotspots_scenario::{run_spec, Outcome, RunContext, ScenarioSpec};

fn main() {
    // 1. "Capture" the controller's channel and extract the command.
    let capture = [
        "PING :irc.backbone.example".to_owned(),
        ":dr0ne7!u@h JOIN ##rbot".to_owned(),
        ":b0ss!u@h PRIVMSG ##rbot :.advscan dcom2 150 3 0 -r -s".to_owned(),
        ":b0ss!u@h PRIVMSG ##rbot :ipscan 20.40.x.x dcom2 -s".to_owned(),
    ];
    let hits = log_scanner::scan_lines(capture);
    println!("extracted {} command(s) from the capture:", hits.len());
    for hit in &hits {
        println!("  line {}: {}", hit.line, hit.command);
    }
    let command = hits
        .last()
        .expect("capture contains commands")
        .command
        .to_string();
    println!("\nrunning the campaign for: {command}\n");

    // 2. A vulnerable population: half inside the targeted 20.40/16
    //    (an academic-network-style cluster), half elsewhere.
    let addrs: Vec<String> = (0..1_500u32)
        .flat_map(|i| {
            [
                Ip::new(0x1428_0000 | (i * 7 % 0x1_0000)), // 20.40.x.x
                Ip::new(0x3700_0000 | (i * 7 % 0x1_0000)), // 55.0.x.x
            ]
        })
        .map(|ip| ip.to_string())
        .collect();

    // 3. The campaign as a spec: bot worm, explicit hosts, sensors
    //    inside and outside the targeted range.
    let sensors: Vec<String> = (0..8u32)
        .map(|i| format!("20.40.{}.0/24", 1 + i * 31))
        .chain((0..8u32).map(|i| format!("55.0.{}.0/24", 1 + i * 31)))
        .collect();
    let mut spec = ScenarioSpec::named("bot-campaign");
    spec.meta.scenario = Some("botnet campaign".to_owned());
    spec.worm = Some(WormSpec::Bot {
        command: command.clone(),
    });
    spec.population = Some(PopSpec::Hosts { addrs });
    spec.telescope = TelescopeSpec::Field {
        placement: PlacementSpec::Prefixes { prefixes: sensors },
        alert_threshold: 5,
        mode: "active".to_owned(),
    };
    spec.sim = SimSpec {
        scan_rate: 20.0,
        seeds: 10,
        max_time: 3_000.0,
        stop_at_fraction: None,
        ..SimSpec::default()
    };

    let mut run = run_spec(&spec, &RunContext::new("bot_campaign")).expect("spec runs");
    let Outcome::Engine { result, field } = &run.outcome else {
        unreachable!("engine-path spec");
    };
    let field = field.as_ref().expect("spec deploys a sensor field");

    // 4. The asymmetry.
    println!(
        "infected {:.1}% of the population ({} probes sent)",
        100.0 * result.infected_fraction(),
        result.probes_sent
    );
    let mut in_range = 0;
    let mut out_of_range = 0;
    for (i, sensor) in field.blocks().iter().enumerate() {
        let alerted = field.alert_time(i).is_some();
        if sensor.base().octets()[0] == 20 {
            // inside the targeted 20.40/16
            in_range += usize::from(alerted);
        } else {
            out_of_range += usize::from(alerted);
        }
    }
    println!("sensors inside 20.40/16 alerted:  {in_range}/8");
    println!("sensors outside the range alerted: {out_of_range}/8");
    println!(
        "\n→ the hit-list confines every probe: hosts outside the range are never \
         infected and\n  out-of-range sensors never alert — a detection \
         system watching anywhere else\n  concludes nothing is happening."
    );

    run.report.config("command", &command);
    if let Err(e) = run.emit_report() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
