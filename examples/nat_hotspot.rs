//! The CodeRedII / NAT hotspot (Figure 4), end to end.
//!
//! Reproduces the paper's quarantine experiment: the same worm run from
//! a public host and from a NATed `192.168.0.100` host, plus the
//! aggregate mixed-population view with its M-block spike.
//!
//! Run with: `cargo run --release --example nat_hotspot`

use hotspots::scenarios::codered;
use hotspots::scenarios::totals_by_block;
use hotspots_ipspace::{ims_deployment, Ip, Prefix};

fn main() {
    // started first so its wall clock covers the whole run
    let mut report =
        hotspots_telemetry::ReportBuilder::new("nat_hotspot", "Figure 4 quarantine + mix");
    let blocks = ims_deployment();
    let m_prefix: Prefix = "192.40.16.0/22".parse().expect("M block prefix");
    let probes = 2_000_000u64;

    println!("== Quarantine runs ({probes} probes each) ==");
    let outside = codered::quarantine_run(Ip::from_octets(57, 20, 3, 9), probes, &blocks, 7);
    let natted = codered::quarantine_run(Ip::from_octets(192, 168, 0, 100), probes, &blocks, 7);
    let m_hits = |h: &hotspots_stats::CountHistogram<hotspots_ipspace::Bucket24>| -> u64 {
        h.iter()
            .filter(|(b, _)| m_prefix.contains(b.first_ip()))
            .map(|(_, c)| c)
            .sum()
    };
    println!(
        "  public 57.20.3.9 host:  {} sensor hits total, {} at the M block",
        outside.total(),
        m_hits(&outside)
    );
    println!(
        "  NATed 192.168.0.100:    {} sensor hits total, {} at the M block",
        natted.total(),
        m_hits(&natted)
    );
    println!("  → the NATed instance's /8 preference leaks straight into public 192/8");

    println!("\n== Mixed population (Fig 4a, reduced scale) ==");
    let study = codered::CodeRedStudy {
        hosts: 4_000,
        nat_fraction: 0.15,
        probes_per_host: 10_000,
        rng_seed: 99,
    };
    let (rows, ledger) = codered::sources_by_block_accounted(&study, &ims_deployment());
    let blocks = ims_deployment();
    println!("  mean unique CodeRedII sources per monitored /24 (15% of hosts NATed):");
    for (label, total) in totals_by_block(&rows) {
        let block = blocks.iter().find(|b| b.label() == label).expect("label");
        let slash24s = (block.size() / 256).max(1) as f64;
        let rate = total as f64 / slash24s;
        let bar = "#".repeat(((rate * 2.0) as usize).min(60));
        println!("  {label:>2}: {rate:>8.2}  {bar}");
    }
    println!("  → M spikes despite being a tiny /22; that is the hotspot.");

    report
        .config("quarantine_probes", probes)
        .config("mixed_hosts", study.hosts)
        .config("nat_fraction", study.nat_fraction)
        .add_population(study.hosts as u64);
    // only the mixed-population run routes through the environment; the
    // quarantine runs scan straight into the telescope index
    hotspots_sim::fold_ledger(&mut report, &ledger);
    report.emit();
}
