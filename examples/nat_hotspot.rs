//! The CodeRedII / NAT hotspot (Figure 4), end to end.
//!
//! Reproduces the paper's quarantine experiment: the same worm run from
//! a public host and from a NATed `192.168.0.100` host, plus the
//! aggregate mixed-population view with its M-block spike. The whole
//! study is one declarative [`ScenarioSpec`], executed through the same
//! [`run_spec`] path as the `hotspots` CLI; this example then renders
//! the outcome its own way.
//!
//! Run with: `cargo run --release --example nat_hotspot`

use hotspots::scenarios::totals_by_block;
use hotspots_ipspace::{ims_deployment, Prefix};
use hotspots_scenario::run::QuarantineTrace;
use hotspots_scenario::spec::StudySpec;
use hotspots_scenario::{run_spec, Outcome, RunContext, ScenarioSpec};

fn main() {
    let probes = 2_000_000u64;
    let mut spec = ScenarioSpec::named("nat-hotspot");
    spec.meta.scenario = Some("Figure 4 quarantine + mix".to_owned());
    spec.study = Some(StudySpec::CodeRedNat {
        hosts: 4_000,
        probes_per_host: 10_000,
        nat_fraction: 0.15,
        rng_seed: 99,
        quarantine_probes_public: probes,
        quarantine_probes_natted: probes,
        quarantine_seed: 7,
    });

    let run = run_spec(&spec, &RunContext::new("nat_hotspot")).expect("study spec runs");
    let Outcome::CodeRedNat {
        study,
        rows,
        quarantines,
    } = &run.outcome
    else {
        unreachable!("CodeRedII study");
    };

    let m_prefix: Prefix = "192.40.16.0/22".parse().expect("M block prefix");
    let m_hits = |q: &QuarantineTrace| -> u64 {
        q.hist
            .iter()
            .filter(|(b, _)| m_prefix.contains(b.first_ip()))
            .map(|(_, c)| c)
            .sum()
    };

    println!("== Quarantine runs ({probes} probes each) ==");
    for q in quarantines {
        println!(
            "  {}: {} sensor hits total, {} at the M block",
            q.label,
            q.hist.total(),
            m_hits(q)
        );
    }
    println!("  → the NATed instance's /8 preference leaks straight into public 192/8");

    println!("\n== Mixed population (Fig 4a, reduced scale) ==");
    let blocks = ims_deployment();
    println!(
        "  mean unique CodeRedII sources per monitored /24 ({:.0}% of hosts NATed):",
        100.0 * study.nat_fraction
    );
    for (label, total) in totals_by_block(rows) {
        let block = blocks.iter().find(|b| b.label() == label).expect("label");
        let slash24s = (block.size() / 256).max(1) as f64;
        let rate = total as f64 / slash24s;
        let bar = "#".repeat(((rate * 2.0) as usize).min(60));
        println!("  {label:>2}: {rate:>8.2}  {bar}");
    }
    println!("  → M spikes despite being a tiny /22; that is the hotspot.");

    if let Err(e) = run.emit_report() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
