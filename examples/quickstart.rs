//! Quickstart: what a hotspot is, in one minute.
//!
//! Points a darknet telescope (the paper's eleven-block IMS deployment)
//! at one million probes from three worms and scores each observed
//! distribution against the uniform-propagation null model:
//!
//! * a **uniform scanner** — no hotspot, by construction;
//! * a **Slammer instance** — algorithmic hotspot: its flawed LCG traps
//!   each host on one cycle, so *which* addresses it can ever probe is
//!   decided by the seed (this one shares a cycle with the telescope's
//!   /8 block and hammers it; other seeds would miss the telescope
//!   entirely — see `slammer_forensics.rs`);
//! * a **NATed CodeRedII instance** — environmental hotspot (topology ×
//!   local preference).
//!
//! Run with: `cargo run --release --example quickstart`

use hotspots::HotspotReport;
use hotspots_ipspace::{ims_deployment, Ip};
use hotspots_prng::{SplitMix, SqlsortDll};
use hotspots_targeting::{CodeRed2Scanner, SlammerScanner, TargetGenerator, UniformScanner};
use hotspots_telescope::BlockIndex;

const PROBES: u64 = 1_000_000;

fn observe(worm: &mut dyn TargetGenerator) -> HotspotReport {
    let blocks = ims_deployment();
    // figure-granularity cells: /24s for small blocks, /16s for the /8,
    // with size-aware (weighted) uniformity scoring
    let cells = hotspots::scenarios::figure_buckets(&blocks);
    let index = BlockIndex::new(cells.iter().map(|(_, p)| *p).collect());
    let mut counts = vec![0u64; cells.len()];
    for _ in 0..PROBES {
        if let Some(i) = index.find(worm.next_target()) {
            counts[i] += 1;
        }
    }
    let weights: Vec<f64> = cells.iter().map(|(_, p)| p.size() as f64).collect();
    HotspotReport::from_weighted_counts(&counts, &weights)
}

fn main() {
    // scanner-vs-telescope study: closed observation, nothing routed
    let mut report = hotspots_telemetry::ReportBuilder::new("quickstart", "hotspot primer");
    report.config("probes_per_worm", PROBES).config("worms", 3);
    println!("{PROBES} probes per worm, observed at the 11-block IMS telescope\n");
    let mut uniform = UniformScanner::new(SplitMix::new(7));
    // Seed the Slammer instance with a state inside the telescope's Z/8
    // block: the whole permutation cycle through Z stays in play, so this
    // host pours a huge share of its probes into one monitored /8.
    let z_state = Ip::from_octets(96, 10, 20, 30).to_le_state();
    let mut slammer = SlammerScanner::new(SqlsortDll::Gold, z_state);
    let mut codered = CodeRed2Scanner::new(Ip::from_octets(192, 168, 0, 100), SplitMix::new(7));

    let cases: [(&str, &mut dyn TargetGenerator); 3] = [
        ("uniform baseline", &mut uniform),
        ("Slammer on the Z-cycle (flawed LCG)", &mut slammer),
        ("CodeRedII behind a NAT", &mut codered),
    ];
    // the telescope monitors ~0.4% of the address space
    let monitored: u64 = ims_deployment().iter().map(|b| b.size()).sum();
    let expected_share = monitored as f64 / 2f64.powi(32);
    for (name, worm) in cases {
        let report = observe(worm);
        println!("== {name} ==");
        println!("  {report}");
        println!(
            "  telescope share of probes: {:.3}% (uniform expectation {:.3}%)",
            100.0 * report.total as f64 / PROBES as f64,
            100.0 * expected_share,
        );
        println!(
            "  verdict: {}\n",
            if report.is_hotspot() {
                "HOTSPOT — deviates from uniform propagation"
            } else {
                "consistent with uniform propagation"
            }
        );
    }
    println!("(see outbreak_detection.rs for why the hotspots blind quorum detectors)");
    if let Err(e) = report.try_emit() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
