//! No-op `Serialize`/`Deserialize` derives for the offline serde
//! stand-in: they accept the attribute position and emit nothing, so
//! `#[cfg_attr(feature = "serde", derive(serde::Serialize))]` compiles
//! without the registry.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
