//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no registry cache, so
//! the workspace vendors the *exact* API surface it uses: [`Rng`],
//! [`RngCore`], [`SeedableRng`], [`rngs::StdRng`], [`seq::SliceRandom`],
//! and [`seq::index::sample`]. The generator behind `StdRng` is
//! xoshiro256++ (seeded via SplitMix64), not upstream's ChaCha12 — so
//! streams differ from upstream `rand 0.8`, but every guarantee the
//! simulator relies on holds: determinism for equal seeds, full-period
//! state initialization, and uniform output.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable uniformly over their whole domain (the `Standard`
/// distribution in upstream terms).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
              u64 => next_u64, usize => next_u64,
              i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (upstream's layout).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform sampling over half-open/closed ranges. Keyed by
/// a blanket [`SampleRange`] impl (upstream's structure), so type
/// inference can unify a range literal's type with the call site's
/// expected type — e.g. `v[rng.gen_range(0..64)]` infers `usize`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[start, end)` (`inclusive = false`) or
    /// `[start, end]` (`inclusive = true`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(
        start: Self,
        end: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                start: $t,
                end: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (end as i128 - start as i128) + i128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                if span > u64::MAX as i128 {
                    // full u64/i64 domain
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                start: $t,
                end: $t,
                _inclusive: bool,
                rng: &mut R,
            ) -> $t {
                assert!(start < end, "cannot sample empty range");
                start + <$t>::sample_standard(rng) * (end - start)
            }
        }
    )*};
}
sample_uniform_float!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from `rng`, uniform over the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_range(start, end, true, rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every bit
/// source (mirrors upstream's `Rng`).
pub trait Rng: RngCore {
    /// One value of `T`, uniform over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// One value uniform over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The full seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64
    /// (upstream's scheme).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the same stream as upstream `rand 0.8`'s ChaCha12-based
    /// `StdRng`; equally deterministic for equal seeds.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start at the all-zero state
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from and permutation of slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }

    /// Index sampling without replacement.
    pub mod index {
        use super::super::{Rng, RngCore};
        use std::collections::HashMap;

        /// Distinct indices in `[0, length)`, in random order.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterates the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// The indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `[0, length)` via a
        /// sparse partial Fisher–Yates (O(amount) memory).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from {length}"
            );
            let mut swaps: HashMap<usize, usize> = HashMap::new();
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                let vj = *swaps.get(&j).unwrap_or(&j);
                let vi = *swaps.get(&i).unwrap_or(&i);
                out.push(vj);
                swaps.insert(j, vi);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{index::sample, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u64..=7);
            assert!((3..=7).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let picked = sample(&mut rng, 1000, 100);
        let mut seen = std::collections::HashSet::new();
        for idx in picked.iter() {
            assert!(idx < 1000);
            assert!(seen.insert(idx), "duplicate {idx}");
        }
        assert_eq!(seen.len(), 100);
        // exhaustive sample covers everything
        let all = sample(&mut rng, 50, 50);
        let mut v = all.into_vec();
        v.sort_unstable();
        assert_eq!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_and_choose_preserve_elements() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input sorted");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        use super::RngCore;
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
