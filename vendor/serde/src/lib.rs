//! Offline stand-in for `serde`.
//!
//! The workspace's `serde` features are *optional* and exist so types
//! can one day round-trip through real serde; no default build (and no
//! test) exercises serialization. This stub provides the trait names
//! and a no-op derive so `--features serde` still compiles offline.
//! Actual JSON emission in this workspace is hand-rolled in
//! `hotspots-telemetry`, which is dependency-free by design.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
