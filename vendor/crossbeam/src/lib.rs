//! Offline stand-in for `crossbeam`, exposing only the scoped-thread
//! API this workspace uses (`crossbeam::thread::scope` + `spawn` +
//! `join`), implemented on `std::thread::scope` (stable since 1.63).

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    /// A scope handle; spawn closures receive `&Scope` (crossbeam's
    /// signature) so nested spawns remain possible.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` if it
        /// panicked).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread bound to this scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which threads borrowing locals can be
    /// spawned; all are joined before return. Unlike crossbeam, a
    /// panicking child propagates the panic on join rather than
    /// surfacing in the `Result`, so the `Ok` arm is the only one
    /// reachable — call sites `.unwrap()`/`.expect()` it either way.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }
}
