//! Offline stand-in for `criterion`.
//!
//! Covers the API the workspace's benches use — `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`finish`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! calibrate-then-sample harness. Each bench prints
//! `name  time: [min median max]` per-iteration timings, which is what
//! the telemetry-overhead acceptance check reads.

#![forbid(unsafe_code)]
// A bench harness exists to read the clock; exempt from the
// workspace-wide clippy.toml disallowed-methods list.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// Opaque value barrier (re-exported `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stand-in times each
/// routine invocation individually, so the variants only document
/// intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh input per routine call, timed per call.
    PerIteration,
    /// Small inputs (upstream batches these; here same as PerIteration).
    SmallInput,
    /// Large inputs (upstream batches these; here same as PerIteration).
    LargeInput,
}

/// Per-sample wall-clock measurement driver.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// per-iteration durations, one per sample
    recorded: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            recorded: Vec::new(),
        }
    }

    /// Times `routine`, batching enough calls per sample to resolve
    /// fast operations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // calibrate: how many calls fill ~2ms?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.recorded.push(start.elapsed() / per_sample);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.recorded.push(start.elapsed());
        }
    }
}

fn report(name: &str, mut samples: Vec<Duration>) {
    if samples.is_empty() {
        println!("{name:<60} time: [no samples]");
        return;
    }
    samples.sort_unstable();
    let fmt = |d: Duration| {
        let ns = d.as_nanos();
        if ns < 10_000 {
            format!("{ns} ns")
        } else if ns < 10_000_000 {
            format!("{:.2} µs", ns as f64 / 1e3)
        } else if ns < 10_000_000_000 {
            format!("{:.2} ms", ns as f64 / 1e6)
        } else {
            format!("{:.2} s", ns as f64 / 1e9)
        }
    };
    let median = samples[samples.len() / 2];
    println!(
        "{name:<60} time: [{} {} {}]",
        fmt(samples[0]),
        fmt(median),
        fmt(*samples.last().expect("non-empty")),
    );
}

/// Top-level benchmark registry and runner.
#[derive(Debug)]
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_samples: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group; benches print as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            samples: self.default_samples,
            _criterion: self,
        }
    }

    /// Runs one stand-alone bench.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher::new(self.default_samples);
        f(&mut b);
        report(name, b.recorded);
    }
}

/// A group of related benches sharing a sample count.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets samples per bench (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Runs one bench within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        report(&format!("{}/{}", self.name, name), b.recorded);
        self
    }

    /// Ends the group (upstream flushes reports here; the stand-in
    /// prints eagerly).
    pub fn finish(self) {}
}

/// Declares a bench group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_requested_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert_eq!(b.recorded.len(), 5);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut b = Bencher::new(4);
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 64]
            },
            |v| v.iter().map(|&x| u64::from(x)).sum::<u64>(),
            BatchSize::PerIteration,
        );
        assert_eq!(setups, 4);
        assert_eq!(b.recorded.len(), 4);
    }

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(1u32)));
        group.finish();
    }

    criterion_group!(demo_group, demo);

    #[test]
    fn group_macro_compiles_and_runs() {
        demo_group();
    }
}
