//! Collection strategies (`collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A length range for [`vec`]: a fixed size, `a..b`, or `a..=b`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// inclusive
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

/// A vector of `elem`-generated values with length drawn from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}
