//! Whole-domain generation (`any::<T>()`).

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types samplable uniformly over their full domain.
pub trait Arbitrary {
    /// Draws one value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
arbitrary_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, bool, f64, f32);

/// The strategy behind [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform over all of `T` (e.g. `any::<u32>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
