//! Value-generation strategies (non-shrinking).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// Generates values of `Value` from a seeded RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// A constant strategy (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}
