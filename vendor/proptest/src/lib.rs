//! Offline stand-in for `proptest`.
//!
//! Implements the strategy surface this workspace's property tests use
//! — `any::<T>()`, integer/float ranges, tuples, `collection::vec`,
//! `prop_map` — plus the `proptest!`/`prop_assert*`/`prop_assume!`
//! macros. Cases are sampled deterministically (seeded by test path),
//! and failures report the sampled inputs. No shrinking: a failing
//! case prints as-is.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub mod arbitrary;

pub mod collection;

/// Why a single sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; try another.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Failure with a message (used by the assertion macros).
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }
}

/// Number of cases per property, overridable via `PROPTEST_CASES`.
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

/// Drives one property: samples cases deterministically (seed derived
/// from `name`) and panics on the first failing case.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut StdRng, u64) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    let cases = case_count();
    let mut rejects = 0u64;
    let mut ran = 0u64;
    let mut seed = 0u64;
    while ran < cases {
        let mut rng = StdRng::seed_from_u64(base.wrapping_add(seed));
        match case(&mut rng, seed) {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects < 65_536,
                    "{name}: too many prop_assume! rejects ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed at case seed {seed}: {msg}");
            }
        }
        seed += 1;
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The imports property tests start from.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn holds(x in any::<u32>(), y in 0u8..=32) { prop_assert!(...); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __strategies = ($($strat,)+);
            $crate::run_cases(
                concat!(module_path!(), "::", stringify!($name)),
                |__rng, _| {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::sample(&__strategies, __rng);
                    // describe inputs before the body can move them
                    let __inputs = format!(
                        "{} = {:?}",
                        stringify!($($arg),+),
                        ($(&$arg,)+),
                    );
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })()
                    .map_err(|e| match e {
                        $crate::TestCaseError::Fail(msg) => $crate::TestCaseError::Fail(
                            format!("{msg}\n  with {__inputs}"),
                        ),
                        reject => reject,
                    })
                },
            );
        }
        $crate::proptest! { $($rest)* }
    };
}

/// `assert!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?} == {:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?} == {:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?} != {:?}`", l, r);
    }};
}

/// Filters the current case out (sampled again with a fresh seed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_any_stay_in_domain(
            x in 3u32..10,
            y in 0u8..=4,
            f in -1.5f64..2.5,
            v in crate::collection::vec(any::<u16>(), 2..=5),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-1.5..2.5).contains(&f));
            prop_assert!((2..=5).contains(&v.len()));
        }

        #[test]
        fn prop_map_applies(n in (0u32..100).prop_map(|v| v * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!(n < 200);
        }

        #[test]
        fn assume_rejects_without_failing(n in any::<u32>()) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases("demo", |_rng, _seed| {
                Err(crate::TestCaseError::Fail("boom".into()))
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("boom"), "{msg}");
        assert!(msg.contains("case seed 0"), "{msg}");
    }

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let mut seen = Vec::new();
            crate::run_cases("det", |rng, _seed| {
                seen.push(crate::strategy::Strategy::sample(&(0u64..1000), rng));
                Ok(())
            });
            seen
        };
        assert_eq!(collect(), collect());
    }
}
