//! Root package: examples and integration tests live here.
