//! Root package: examples and integration tests live here.

#![forbid(unsafe_code)]
