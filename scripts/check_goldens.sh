#!/usr/bin/env bash
# Golden run-report check for every registry preset.
#
# Runs each preset the `hotspots` CLI knows about at --quick scale,
# normalizes the JSONL run report (host-timing fields stripped), and
# diffs it against the checked-in golden under results/golden/. Any
# drift in probe accounting, infections, config echo, or population
# totals fails the check.
#
# Usage:
#   scripts/check_goldens.sh            # compare against goldens
#   scripts/check_goldens.sh --update   # regenerate the goldens
#
# Set HOTSPOTS to point at the CLI binary (default: release build).
set -euo pipefail
cd "$(dirname "$0")/.."

HOTSPOTS=${HOTSPOTS:-target/release/hotspots}
if [ ! -x "$HOTSPOTS" ]; then
    echo "error: $HOTSPOTS not built (cargo build --release -p hotspots-experiments --bin hotspots)" >&2
    exit 1
fi

mode=check
if [ "${1:-}" = "--update" ]; then
    mode=update
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
mkdir -p results/golden

normalize() {
    python3 - "$1" "$2" <<'PY'
import json, sys

src, dst = sys.argv[1], sys.argv[2]
VOLATILE = ("wall_seconds", "peak_step_seconds", "phases")
with open(src) as f, open(dst, "w") as out:
    for line in f:
        if not line.strip():
            continue
        report = json.loads(line)
        for key in VOLATILE:
            report.pop(key, None)
        out.write(json.dumps(report) + "\n")
PY
}

fail=0
for name in $("$HOTSPOTS" list | awk '/^  / {print $1}'); do
    raw="$tmp/$name.raw"
    HOTSPOTS_RUN_REPORT= "$HOTSPOTS" run "$name" --quick --report "$raw" >/dev/null
    normalize "$raw" "$tmp/$name.jsonl"
    if [ "$mode" = update ]; then
        cp "$tmp/$name.jsonl" "results/golden/$name.jsonl"
        echo "updated results/golden/$name.jsonl"
    elif ! diff -u "results/golden/$name.jsonl" "$tmp/$name.jsonl"; then
        echo "MISMATCH: $name (regenerate with scripts/check_goldens.sh --update if intended)" >&2
        fail=1
    else
        echo "ok: $name"
    fi
done

exit "$fail"
