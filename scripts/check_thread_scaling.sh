#!/usr/bin/env bash
# Worker-pool scaling guard (DESIGN.md §5h).
#
# Reads the freshly regenerated BENCH_engine.json and asserts the
# persistent sharded executor is not losing throughput to its own
# machinery: on a machine with at least 2 hardware cores, the
# 2-thread point of the scaling curve must reach at least 0.95x the
# serial throughput. Single-core runners (where two workers just
# timeslice one core and the ratio is scheduler noise) log a skip
# instead of failing.
#
# Usage:
#   scripts/check_thread_scaling.sh [BENCH_engine.json]
#
# HOTSPOTS_SCALING_FLOOR overrides the 0.95 ratio floor.
set -euo pipefail
cd "$(dirname "$0")/.."

bench_json=${1:-BENCH_engine.json}
floor=${HOTSPOTS_SCALING_FLOOR:-0.95}

if [ ! -f "$bench_json" ]; then
    echo "error: $bench_json not found (run: cargo bench -p hotspots-bench --bench engine --features parallel,telemetry)" >&2
    exit 1
fi

cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$cores" -lt 2 ]; then
    echo "skip: only $cores hardware core(s); 2-thread vs serial ratio is scheduler noise on this runner"
    exit 0
fi

python3 - "$bench_json" "$floor" <<'PY'
import json, sys

summary = json.load(open(sys.argv[1]))
floor = float(sys.argv[2])

serial = summary.get("serial_probes_per_sec")
if not serial:
    sys.exit("FAIL: no serial_probes_per_sec in benchmark summary")

two = next(
    (p for p in summary.get("scaling", []) if p.get("threads") == 2),
    None,
)
if two is None:
    sys.exit("FAIL: scaling curve has no 2-thread point "
             "(set HOTSPOTS_BENCH_THREADS to include 2)")

ratio = two["probes_per_sec"] / serial
print(f"serial: {serial:,.0f} probes/s, 2-thread: {two['probes_per_sec']:,.0f} "
      f"probes/s ({ratio:.3f}x, floor {floor}x)")
if ratio < floor:
    sys.exit(f"FAIL: 2-thread throughput is {ratio:.3f}x serial, "
             f"below the {floor}x floor — the worker pool is losing "
             f"more than it shards")
print("ok: 2-thread point clears the floor")
PY
