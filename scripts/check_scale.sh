#!/usr/bin/env bash
# Internet-scale population check (DESIGN.md §5g).
#
# Drives the million-host presets end-to-end and enforces the two
# scale contracts the compressed population store makes:
#
#   1. memory  — the compressed store's bytes stay at or below 1/4 of
#      the dense-equivalent layout for the same hosts, and the whole
#      profiled process stays under a resident-set ceiling
#      (HOTSPOTS_SCALE_RSS_MB, default 512 MB);
#   2. scale   — `hotspots run` on each million-host preset completes
#      at 1M+ hosts end-to-end (Zipf synthesis, compressed lookup,
#      full outbreak loop).
#
# The report-vs-golden diff for these presets rides in
# scripts/check_goldens.sh with every other preset, and the
# dense/compressed bit-identity suite lives in
# crates/scenario/tests/cross_store.rs; CI runs both next to this
# script.
#
# Usage:
#   scripts/check_scale.sh
#
# Set HOTSPOTS to point at the CLI binary (default: release build;
# the profile step needs one built with the telemetry-enabled
# experiments crate, which is its default).
set -euo pipefail
cd "$(dirname "$0")/.."

HOTSPOTS=${HOTSPOTS:-target/release/hotspots}
RSS_CEILING_MB=${HOTSPOTS_SCALE_RSS_MB:-512}
if [ ! -x "$HOTSPOTS" ]; then
    echo "error: $HOTSPOTS not built (cargo build --release -p hotspots-experiments --bin hotspots)" >&2
    exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

fail=0
for name in bench-million fig2-million; do
    raw="$tmp/$name.raw"
    HOTSPOTS_RUN_REPORT= "$HOTSPOTS" run "$name" --quick --report "$raw" >/dev/null
    hosts=$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["population"])' "$raw")
    if [ "$hosts" -lt 1000000 ]; then
        echo "FAIL: $name ran only $hosts hosts (expected 1M+)" >&2
        fail=1
    else
        echo "ok: $name completed at $hosts hosts"
    fi
done

# Memory contract, measured by the profile harness on a real run.
bench_json="$tmp/bench-million.json"
"$HOTSPOTS" profile bench-million --quick --scaling 1 \
    --out "$tmp" --bench-json "$bench_json" >/dev/null
python3 - "$bench_json" "$RSS_CEILING_MB" <<'PY'
import json, sys

summary = json.load(open(sys.argv[1]))
ceiling_mb = int(sys.argv[2])
mem = summary.get("memory")
if mem is None:
    sys.exit("FAIL: profile harness recorded no memory block")

store, dense = mem["store_bytes"], mem["dense_store_bytes"]
print(f"store: {mem['store']}, {store} bytes vs {dense} dense-equivalent "
      f"({100 * store / dense:.1f}%)")
if mem["store"] != "compressed":
    sys.exit(f"FAIL: bench-million built a {mem['store']} store")
if store * 4 > dense:
    sys.exit(f"FAIL: compressed store ({store} B) exceeds 1/4 of "
             f"dense-equivalent ({dense} B)")

rss = mem.get("resident_bytes")
if rss is None:
    print("warn: no resident_bytes (not a Linux /proc host?); skipping ceiling")
else:
    print(f"resident set: {rss / 2**20:.1f} MiB (ceiling {ceiling_mb} MiB)")
    if rss > ceiling_mb * 2**20:
        sys.exit(f"FAIL: resident set {rss} B exceeds {ceiling_mb} MiB ceiling")
PY

exit "$fail"
